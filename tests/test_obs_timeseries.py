"""Windowed series, quantile sketches, cost ledger, telemetry hub."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.timeseries import (
    CostLedger,
    QuantileSketch,
    TelemetryHub,
    WindowedQuantiles,
    WindowedSeries,
    get_hub,
    set_hub,
    use_hub,
)


def _true_quantile(values: list[float], q: float) -> float:
    """The exact sample the sketch promises to approximate."""
    ordered = sorted(values)
    rank = int(math.floor(q * (len(ordered) - 1) + 0.5))
    return ordered[rank]


# -- QuantileSketch ---------------------------------------------------


class TestQuantileSketch:
    def test_empty(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean == 0.0

    def test_single_value(self):
        sketch = QuantileSketch()
        sketch.observe(0.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert sketch.quantile(q) == pytest.approx(0.25, rel=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch().observe(-1.0)

    def test_bad_accuracy_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.0)
        with pytest.raises(ValueError):
            QuantileSketch(1.0)

    def test_relative_error_on_known_distribution(self):
        sketch = QuantileSketch(0.01)
        values = [0.001 * (i + 1) for i in range(1000)]
        for v in values:
            sketch.observe(v)
        for q in (0.5, 0.9, 0.99, 0.999):
            true = _true_quantile(values, q)
            assert sketch.quantile(q) == pytest.approx(true, rel=0.011)

    def test_memory_bounded_by_max_bins(self):
        sketch = QuantileSketch(0.01, max_bins=64)
        # 10 decades of dynamic range, far more distinct bins than 64.
        for i in range(20_000):
            sketch.observe(10 ** (-5 + 10 * (i / 20_000)))
        assert sketch.bin_count <= 64 + 1  # +1 for the zero bin slot
        assert sketch.count == 20_000
        # Collapses eat the cheap end; the tail stays accurate.
        assert sketch.quantile(0.99) == pytest.approx(
            10 ** (-5 + 10 * 0.99), rel=0.05
        )

    def test_count_above(self):
        sketch = QuantileSketch()
        for v in (0.1, 0.2, 0.9, 1.5, 2.0):
            sketch.observe(v)
        assert sketch.count_above(1.0) == 2
        assert sketch.count_above(10.0) == 0

    def test_merge_mismatched_accuracy_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_merge_equals_union(self):
        a, b, union = QuantileSketch(), QuantileSketch(), QuantileSketch()
        left = [0.01 * (i + 1) for i in range(50)]
        right = [0.5 + 0.02 * i for i in range(30)]
        for v in left:
            a.observe(v)
            union.observe(v)
        for v in right:
            b.observe(v)
            union.observe(v)
        merged = a.merge(b)
        assert merged.count == union.count
        assert merged.sum == pytest.approx(union.sum)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert merged.quantile(q) == pytest.approx(
                union.quantile(q), rel=1e-9
            )

    def test_serialization_round_trip(self):
        sketch = QuantileSketch()
        for v in (0.0, 0.1, 0.5, 2.0):
            sketch.observe(v)
        restored = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert restored.count == sketch.count
        assert restored.min == sketch.min
        assert restored.max == sketch.max
        for q in (0.25, 0.5, 0.99):
            assert restored.quantile(q) == sketch.quantile(q)


# -- property tests (the acceptance criterion's sketch guarantees) ----

_VALUES = st.lists(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=200,
)


def _sketch_of(values: list[float]) -> QuantileSketch:
    sketch = QuantileSketch(0.01)
    for v in values:
        sketch.observe(v)
    return sketch


class TestSketchProperties:
    @settings(max_examples=60, deadline=None)
    @given(values=_VALUES, q=st.floats(min_value=0.0, max_value=1.0))
    def test_relative_error_bound(self, values, q):
        sketch = _sketch_of(values)
        true = _true_quantile(values, q)
        assert sketch.quantile(q) == pytest.approx(true, rel=0.0101)

    @settings(max_examples=60, deadline=None)
    @given(a=_VALUES, b=_VALUES)
    def test_merge_commutative(self, a, b):
        ab = _sketch_of(a).merge(_sketch_of(b))
        ba = _sketch_of(b).merge(_sketch_of(a))
        assert ab.to_dict()["bins"] == ba.to_dict()["bins"]
        assert ab.count == ba.count
        assert ab.min == ba.min and ab.max == ba.max
        assert math.isclose(ab.sum, ba.sum, rel_tol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(a=_VALUES, b=_VALUES, c=_VALUES)
    def test_merge_associative(self, a, b, c):
        sa, sb, sc = _sketch_of(a), _sketch_of(b), _sketch_of(c)
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left.to_dict()["bins"] == right.to_dict()["bins"]
        assert left.count == right.count
        assert left.min == right.min and left.max == right.max
        assert math.isclose(left.sum, right.sum, rel_tol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=50,
        ),
        data=st.data(),
    )
    def test_windowed_series_order_invariant(self, values, data):
        """Observations landing in one window commute exactly."""
        shuffled = data.draw(st.permutations(values))
        a = WindowedSeries(window_s=60.0)
        b = WindowedSeries(window_s=60.0)
        for v in values:
            a.observe(v, at_s=30.0)
        for v in shuffled:
            b.observe(v, at_s=30.0)
        (pa,), (pb,) = a.points(), b.points()
        assert pa.count == pb.count
        assert pa.min == pb.min and pa.max == pb.max
        assert math.isclose(pa.total, pb.total, rel_tol=1e-9)


# -- WindowedSeries ---------------------------------------------------


class TestWindowedSeries:
    def test_windowing_and_rates(self):
        series = WindowedSeries(window_s=60.0, capacity=10)
        series.observe(1.0, at_s=10.0)
        series.observe(1.0, at_s=50.0)
        series.observe(1.0, at_s=70.0)
        points = series.points()
        assert [p.index for p in points] == [0, 1]
        assert [p.count for p in points] == [2, 1]
        assert series.count() == 3
        assert series.total(last=1) == 1.0
        assert series.rate_per_s() == pytest.approx(3 / 120.0)

    def test_capacity_eviction_and_late_drop(self):
        series = WindowedSeries(window_s=1.0, capacity=3)
        for t in range(6):
            series.observe(1.0, at_s=float(t))
        assert [p.index for p in series.points()] == [3, 4, 5]
        series.observe(1.0, at_s=0.5)  # beyond the horizon now
        assert series.late_dropped == 1
        assert series.count() == 3

    def test_round_trip(self):
        series = WindowedSeries(window_s=30.0, capacity=5)
        series.observe(2.0, at_s=0.0)
        series.observe(4.0, at_s=31.0)
        restored = WindowedSeries.from_dict(
            json.loads(json.dumps(series.to_dict()))
        )
        assert [p.to_dict() for p in restored.points()] == [
            p.to_dict() for p in series.points()
        ]
        restored.observe(1.0, at_s=62.0)
        assert restored.count() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedSeries(window_s=0.0)
        with pytest.raises(ValueError):
            WindowedSeries(capacity=0)


# -- WindowedQuantiles ------------------------------------------------


class TestWindowedQuantiles:
    def test_per_window_and_merged(self):
        wq = WindowedQuantiles(window_s=60.0)
        for i in range(100):
            wq.observe(0.1, at_s=10.0)
            wq.observe(0.9, at_s=70.0)
        assert len(wq.windows()) == 2
        p50s = dict(wq.quantile_series(0.5))
        assert p50s[0] == pytest.approx(0.1, rel=0.01)
        assert p50s[1] == pytest.approx(0.9, rel=0.01)
        merged = wq.merged()
        assert merged.count == 200
        assert merged.quantile(0.99) == pytest.approx(0.9, rel=0.01)
        assert wq.merged(last=1).count == 100

    def test_round_trip(self):
        wq = WindowedQuantiles(window_s=60.0)
        for v in (0.1, 0.2, 0.3):
            wq.observe(v, at_s=5.0)
        restored = WindowedQuantiles.from_dict(
            json.loads(json.dumps(wq.to_dict()))
        )
        assert restored.merged().count == 3
        assert restored.merged().quantile(0.5) == pytest.approx(
            0.2, rel=0.01
        )


# -- CostLedger -------------------------------------------------------


class TestCostLedger:
    def test_accumulation_and_buckets(self):
        ledger = CostLedger()
        ledger.record_query(1e-6, 2e-6, at_s=0.0)
        ledger.record_query(1e-6, 0.0, at_s=120.0)
        ledger.record_maintain("index", 5e-5, 1e-5, at_s=60.0)
        ledger.record_maintain("compact", 1e-5, 0.0, at_s=90.0)
        ledger.set_storage(data_bytes=1000, index_bytes=100)
        assert ledger.serve_queries == 2
        assert ledger.serve_usd == pytest.approx(4e-6)
        assert ledger.cost_per_query_usd == pytest.approx(2e-6)
        assert ledger.index_build_usd == pytest.approx(6e-5)
        assert ledger.maintain_usd == pytest.approx(1e-5)
        assert ledger.elapsed_s == pytest.approx(120.0)

    def test_round_trip(self):
        ledger = CostLedger()
        ledger.record_query(1e-6, 2e-6, at_s=3.0)
        ledger.set_storage(data_bytes=42, index_bytes=7)
        restored = CostLedger.from_dict(
            json.loads(json.dumps(ledger.to_dict()))
        )
        assert restored.to_dict() == ledger.to_dict()


# -- TelemetryHub -----------------------------------------------------


class TestTelemetryHub:
    def test_named_series_are_cached(self):
        hub = TelemetryHub()
        assert hub.series("a") is hub.series("a")
        assert hub.quantiles("b") is hub.quantiles("b")

    def test_snapshot_round_trip(self):
        hub = TelemetryHub()
        hub.series("serve.queries").observe(1.0, at_s=1.0)
        hub.quantiles("serve.latency_s").observe(0.2, at_s=1.0)
        hub.ledger.record_query(1e-6, 0.0, at_s=1.0)
        hub.tail.record(0.2, at_s=1.0, phase_s={"plan": 0.2})
        restored = TelemetryHub.from_snapshot(
            json.loads(json.dumps(hub.snapshot()))
        )
        assert restored.series("serve.queries").count() == 1
        assert restored.quantiles("serve.latency_s").merged().count == 1
        assert restored.ledger.serve_queries == 1
        assert len(restored.tail) == 1

    def test_global_hub_scoping(self):
        default = get_hub()
        scoped = TelemetryHub()
        with use_hub(scoped):
            assert get_hub() is scoped
        assert get_hub() is default
        previous = set_hub(scoped)
        try:
            assert get_hub() is scoped
        finally:
            set_hub(previous)

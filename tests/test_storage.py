"""Object store semantics: the primitives the protocol depends on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    InjectedFault,
    InvalidByteRange,
    ObjectNotFound,
    PreconditionFailed,
)
from repro.storage.faults import FaultRule, FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.stats import IOStats, Request, RequestTrace
from repro.util.clock import SimClock


@pytest.fixture
def store():
    return InMemoryObjectStore(clock=SimClock(start=1000.0))


class TestBasicOps:
    def test_put_get_roundtrip(self, store):
        store.put("a/b", b"hello")
        assert store.get("a/b") == b"hello"

    def test_get_missing_raises(self, store):
        with pytest.raises(ObjectNotFound):
            store.get("nope")

    def test_head_reports_size_and_mtime(self, store):
        store.clock.advance(5)
        info = store.put("k", b"12345")
        assert info.size == 5
        assert info.mtime == 1005.0
        assert store.head("k").size == 5

    def test_put_overwrites(self, store):
        store.put("k", b"one")
        store.put("k", b"two")
        assert store.get("k") == b"two"

    def test_empty_key_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("", b"x")

    def test_delete_is_idempotent(self, store):
        store.put("k", b"x")
        store.delete("k")
        store.delete("k")  # no error, like S3
        assert not store.exists("k")

    def test_exists(self, store):
        assert not store.exists("k")
        store.put("k", b"x")
        assert store.exists("k")


class TestConditionalPut:
    """The compare-and-swap both transaction logs rely on."""

    def test_if_none_match_succeeds_on_fresh_key(self, store):
        store.put("log/0", b"v0", if_none_match=True)
        assert store.get("log/0") == b"v0"

    def test_if_none_match_fails_on_existing_key(self, store):
        store.put("log/0", b"v0")
        with pytest.raises(PreconditionFailed):
            store.put("log/0", b"other", if_none_match=True)
        # Loser must not have clobbered the winner.
        assert store.get("log/0") == b"v0"

    def test_failed_conditional_put_is_still_billed(self, store):
        store.put("k", b"x")
        before = store.stats.puts
        with pytest.raises(PreconditionFailed):
            store.put("k", b"y", if_none_match=True)
        assert store.stats.puts == before + 1


class TestByteRange:
    def test_range_read(self, store):
        store.put("k", b"0123456789")
        assert store.get("k", (2, 4)) == b"2345"

    def test_full_range(self, store):
        store.put("k", b"abc")
        assert store.get("k", (0, 3)) == b"abc"

    def test_zero_length_range(self, store):
        store.put("k", b"abc")
        assert store.get("k", (1, 0)) == b""

    @pytest.mark.parametrize("rng", [(-1, 2), (0, 4), (3, 1), (2, -1)])
    def test_invalid_ranges(self, store, rng):
        store.put("k", b"abc")
        with pytest.raises(InvalidByteRange):
            store.get("k", rng)

    def test_range_read_bills_only_range_bytes(self, store):
        store.put("k", b"x" * 100)
        before = store.stats.bytes_read
        store.get("k", (10, 7))
        assert store.stats.bytes_read == before + 7


class TestList:
    def test_list_prefix_sorted(self, store):
        store.put("t/b", b"2")
        store.put("t/a", b"1")
        store.put("u/c", b"3")
        keys = [i.key for i in store.list("t/")]
        assert keys == ["t/a", "t/b"]

    def test_list_all(self, store):
        store.put("x", b"1")
        assert [i.key for i in store.list()] == ["x"]

    def test_list_empty_prefix_result(self, store):
        assert store.list("none/") == []


class TestStatsAndHelpers:
    def test_stats_accumulate(self, store):
        store.put("a", b"12")
        store.get("a")
        store.list("")
        store.delete("a")
        s = store.stats
        assert (s.puts, s.gets, s.lists, s.deletes) == (1, 1, 1, 1)
        assert s.bytes_written == 2
        assert s.bytes_read == 2

    def test_stats_snapshot_delta(self, store):
        store.put("a", b"xy")
        before = store.stats.snapshot()
        store.get("a")
        delta = store.stats.delta(before)
        assert delta.gets == 1
        assert delta.puts == 0
        assert delta.bytes_read == 2

    def test_total_bytes_and_keys(self, store):
        store.put("p/a", b"123")
        store.put("p/b", b"4567")
        store.put("q/c", b"1")
        assert store.total_bytes("p/") == 7
        assert store.keys() == ["p/a", "p/b", "q/c"]

    def test_unknown_op_rejected(self):
        stats = IOStats()
        with pytest.raises(ValueError):
            stats.record(Request(op="POKE", key="k", nbytes=0))


class TestTracing:
    def test_trace_records_rounds(self, store):
        store.put("a", b"xx")  # not traced
        trace = store.start_trace()
        store.get("a")
        store.get("a")
        store.barrier()
        store.get("a")
        done = store.stop_trace()
        assert done is trace
        assert done.depth == 2
        assert done.total_requests == 3
        assert done.total_bytes == 6

    def test_barrier_on_empty_round_is_noop(self, store):
        trace = store.start_trace()
        store.barrier()
        store.barrier()
        store.get_missing = None
        store.put("a", b"x")
        store.stop_trace()
        assert trace.depth == 1

    def test_stop_without_start_raises(self, store):
        with pytest.raises(RuntimeError):
            store.stop_trace()

    def test_merge_parallel_aligns_rounds(self):
        t1 = RequestTrace()
        t1.record(Request("GET", "a", 10))
        t1.barrier()
        t1.record(Request("GET", "b", 20))
        t2 = RequestTrace()
        t2.record(Request("GET", "c", 30))
        merged = t1.merge_parallel(t2)
        assert merged.depth == 2
        assert len(merged.rounds[0]) == 2
        assert merged.total_bytes == 60

    def test_merge_parallel_empty(self):
        merged = RequestTrace().merge_parallel(RequestTrace())
        assert merged.depth == 0
        assert merged.total_requests == 0


class TestFaultInjection:
    def test_fault_fires_once(self, store):
        faulty = FaultyObjectStore(store)
        faulty.fail_next("PUT", "target")
        with pytest.raises(InjectedFault):
            faulty.put("a/target/b", b"x")
        faulty.put("a/target/b", b"x")  # second attempt succeeds
        assert store.get("a/target/b") == b"x"

    def test_fault_countdown(self, store):
        faulty = FaultyObjectStore(store)
        faulty.fail_next("PUT", countdown=2)
        faulty.put("a", b"1")
        faulty.put("b", b"2")
        with pytest.raises(InjectedFault):
            faulty.put("c", b"3")
        assert not store.exists("c")

    def test_fault_on_delete_only(self, store):
        faulty = FaultyObjectStore(store)
        faulty.fail_next("DELETE")
        faulty.put("k", b"x")
        faulty.get("k")
        with pytest.raises(InjectedFault):
            faulty.delete("k")
        assert store.exists("k")

    def test_wildcard_op(self, store):
        faulty = FaultyObjectStore(store)
        faulty.add_rule(FaultRule(op="*"))
        with pytest.raises(InjectedFault):
            faulty.list("")

    def test_failed_put_leaves_no_partial_object(self, store):
        faulty = FaultyObjectStore(store)
        faulty.fail_next("PUT", "x")
        with pytest.raises(InjectedFault):
            faulty.put("x", b"partial")
        assert not store.exists("x")

    def test_stats_shared_with_inner(self, store):
        faulty = FaultyObjectStore(store)
        faulty.put("k", b"xy")
        assert store.stats.puts == 1


class TestConsistency:
    """Strong read-after-write: the one assumption the paper's protocol
    makes of the object store."""

    def test_read_after_write(self, store):
        for i in range(50):
            store.put("k", str(i).encode())
            assert store.get("k") == str(i).encode()

    def test_list_after_write(self, store):
        for i in range(10):
            store.put(f"p/{i:03d}", b"x")
            assert len(store.list("p/")) == i + 1

    @given(st.binary(min_size=0, max_size=1000), st.integers(0, 999))
    def test_range_get_matches_slice(self, data, start):
        store = InMemoryObjectStore()
        store.put("k", data)
        if start <= len(data):
            length = len(data) - start
            assert store.get("k", (start, length)) == data[start:]

"""`repro profile`: the attributed bill through the real CLI."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cli import main


@pytest.fixture
def indexed_bucket(tmp_path, capsys):
    """Disk-backed lake with an indexed binary column, built via CLI."""
    bucket = str(tmp_path / "bucket")
    assert main([
        "create-table", "--root", bucket, "--table", "lake/logs",
        "--schema", "request_id:binary,message:string",
        "--row-group-rows", "100", "--page-target-bytes", "1024",
    ]) == 0
    jsonl = tmp_path / "rows.jsonl"
    keys = [hashlib.sha256(f"k-{i}".encode()).digest()[:16] for i in range(300)]
    with open(jsonl, "w") as f:
        for i, key in enumerate(keys):
            f.write(json.dumps(
                {"request_id": key.hex(), "message": f"event {i}"}
            ) + "\n")
    assert main([
        "append", "--root", bucket, "--table", "lake/logs",
        "--jsonl", str(jsonl),
    ]) == 0
    assert main([
        "index", "--root", bucket, "--table", "lake/logs",
        "--index-dir", "idx/logs", "--column", "request_id",
        "--type", "uuid_trie",
    ]) == 0
    capsys.readouterr()  # drop setup output
    return bucket, keys


def test_profile_prints_bill_and_reconciles(indexed_bucket, capsys):
    bucket, keys = indexed_bucket
    code = main([
        "profile", "--root", bucket, "--table", "lake/logs",
        "--index-dir", "idx/logs", "--column", "request_id",
        "--uuid", keys[7].hex(), "-k", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    # Timeline with the phase spans...
    assert "search" in out
    assert "plan" in out
    assert "probe:index" in out
    # ...the bill table...
    assert "per-query bill" in out
    assert "index_probe" in out
    assert "total cost" in out
    # ...and the acceptance criterion, verified by the command itself.
    assert "[exact]" in out
    assert "MISMATCH" not in out


def test_profile_prints_critical_path_and_tail_line(indexed_bucket, capsys):
    bucket, keys = indexed_bucket
    code = main([
        "profile", "--root", bucket, "--table", "lake/logs",
        "--index-dir", "idx/logs", "--column", "request_id",
        "--uuid", keys[5].hex(), "--repeat", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "critical path (follow the last-finishing child):" in out
    # The tail-attribution headline compares the batch's tail vs median.
    assert "is dominated by" in out
    assert "p50 is" in out
    # Reconciliation still holds when the bill aggregates 3 runs.
    assert "[exact]" in out


def test_profile_executor_path_and_spans_dump(indexed_bucket, capsys, tmp_path):
    bucket, keys = indexed_bucket
    spans_path = tmp_path / "spans.jsonl"
    code = main([
        "profile", "--root", bucket, "--table", "lake/logs",
        "--index-dir", "idx/logs", "--column", "request_id",
        "--uuid", keys[3].hex(), "--max-searchers", "4",
        "--spans", str(spans_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "[exact]" in out
    rows = [json.loads(line) for line in open(spans_path)]
    assert rows[0]["name"] == "search"
    assert rows[0]["attributes"]["engine"] == "executor"
    names = {r["name"] for r in rows}
    assert "searcher:task" in names
    # Worker spans point back into the tree.
    ids = {r["span_id"] for r in rows}
    assert all(r["parent_id"] in ids for r in rows[1:])

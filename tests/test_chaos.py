"""Tests for the repro.chaos crash-fault harness.

Covers the crash-point registry (and its one-to-one sync with
docs/protocol.md), the exhaustive per-mutation crash matrices for
index/compact/vacuum, the seeded protocol fuzzer, the `repro chaos`
CLI subcommand, and two guard rails that ride along: FaultRule's
case-insensitive op matching and docstring presence in the
crash-safety-critical modules.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

from repro.chaos import (
    CRASH_POINTS,
    MUTATING_VERBS,
    ChaosConfig,
    ProtocolFuzzer,
    classify_crash_point,
    crash_matrix,
    run_chaos,
)
from repro.cli import main
from repro.core.client import RottnestClient
from repro.core.maintenance import compact_indices, vacuum_indices
from repro.errors import InjectedFault, SimulatedCrash
from repro.lake.table import LakeTable, TableConfig
from repro.storage.faults import FaultRule, FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------
# crash-point registry
# ---------------------------------------------------------------------
class TestCrashPoints:
    def test_registry_names_are_well_formed(self):
        for name in CRASH_POINTS:
            verb, _, boundary = name.partition(":")
            assert verb in MUTATING_VERBS
            assert boundary and re.fullmatch(r"[a-z-]+", boundary)

    @pytest.mark.parametrize(
        ("verb", "op", "key", "expected"),
        [
            ("index", "PUT", "idx/e/files/ab12.index", "index:put-index-file"),
            ("compact", "PUT", "idx/e/files/ab12.index", "compact:put-merged-index"),
            ("index", "PUT", "idx/e/_meta/000003.json", "index:put-meta-commit"),
            ("compact", "PUT", "idx/e/_meta/000003.json", "compact:put-meta-commit"),
            ("vacuum", "PUT", "idx/e/_meta/000003.json", "vacuum:put-meta-commit"),
            (
                "vacuum",
                "PUT",
                "idx/e/_meta_checkpoints/000004.json",
                "vacuum:put-meta-checkpoint",
            ),
            ("vacuum", "DELETE", "idx/e/files/ab12.index", "vacuum:delete-index-file"),
            # ops arrive in whatever case the store layer used
            ("index", "put", "idx/e/files/ab12.index", "index:put-index-file"),
        ],
    )
    def test_classify(self, verb, op, key, expected):
        assert classify_crash_point(verb, op, key) == expected
        assert expected in CRASH_POINTS

    def test_unknown_boundary_is_not_in_registry(self):
        name = classify_crash_point("index", "PUT", "idx/e/elsewhere.bin")
        assert name == "index:unclassified-put"
        assert name not in CRASH_POINTS

    def test_docs_crash_matrix_matches_registry_one_to_one(self):
        """docs/protocol.md and CRASH_POINTS must name the same points."""
        text = (REPO_ROOT / "docs" / "protocol.md").read_text()
        documented = set(
            re.findall(
                r"`((?:index|compact|vacuum|ingest|drain|crack|obs):[a-z-]+)`",
                text,
            )
        )
        assert documented == set(CRASH_POINTS)


# ---------------------------------------------------------------------
# guard rails riding along with the harness
# ---------------------------------------------------------------------
class TestFaultRuleMatching:
    def test_op_matching_is_case_insensitive(self):
        """Regression: a lowercase op must arm a rule that actually
        fires (historically ``fail_next("put", …)`` matched nothing)."""
        store = FaultyObjectStore(InMemoryObjectStore())
        store.fail_next("put", "some/")
        with pytest.raises(InjectedFault):
            store.put("some/key", b"x")
        store.put("some/key", b"x")  # one-shot rule already consumed

    def test_mixed_case_op_from_caller_side(self):
        rule = FaultRule(op="PUT")
        assert rule.matches("put", "k")

    def test_crash_after_rejects_read_ops(self):
        with pytest.raises(ValueError):
            FaultRule(op="GET", mode="crash_after")

    def test_crash_after_leaves_mutation_durable(self):
        store = FaultyObjectStore(InMemoryObjectStore())
        store.crash_after("PUT")
        with pytest.raises(SimulatedCrash) as exc_info:
            store.put("a/key", b"payload")
        assert store.inner.get("a/key") == b"payload"
        assert exc_info.value.op == "PUT"
        assert exc_info.value.key == "a/key"


DOCSTRING_ENFORCED_MODULES = (
    "src/repro/core/maintenance.py",
    "src/repro/core/fsck.py",
    "src/repro/storage/__init__.py",
    "src/repro/storage/costs.py",
    "src/repro/storage/faults.py",
    "src/repro/storage/latency.py",
    "src/repro/storage/localfs.py",
    "src/repro/storage/object_store.py",
    "src/repro/storage/pool.py",
    "src/repro/storage/retry.py",
    "src/repro/storage/sched.py",
    "src/repro/storage/stats.py",
)


class TestDocstringPresence:
    """Mirror of the ruff ``D1`` gate in pyproject.toml.

    CI runs ruff, but this repo must keep the property checkable with
    the test suite alone: every public (and dunder) class/function in
    the crash-safety-critical modules carries a docstring, because
    those docstrings *are* the protocol's §IV-D correctness argument.
    """

    @pytest.mark.parametrize("rel_path", DOCSTRING_ENFORCED_MODULES)
    def test_module_is_fully_docstringed(self, rel_path):
        tree = ast.parse((REPO_ROOT / rel_path).read_text())
        assert ast.get_docstring(tree), f"{rel_path}: missing module docstring"
        missing = []
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            name = node.name
            private = name.startswith("_") and not (
                name.startswith("__") and name.endswith("__")
            )
            if private:
                continue
            if not ast.get_docstring(node):
                missing.append(name)
        assert not missing, f"{rel_path}: missing docstrings on {missing}"


# ---------------------------------------------------------------------
# exhaustive crash matrices (the resumability acceptance criterion)
# ---------------------------------------------------------------------
def _make_client(store) -> RottnestClient:
    client = RottnestClient(
        store, "idx/events", LakeTable.open(store, "lake/events")
    )
    # Checkpoint on every commit so the *:put-meta-checkpoint crash
    # points are part of every matrix, not a 1-in-10 accident.
    client.meta.checkpoint_interval = 1
    return client


def _base_lake(batches: int = 2, rows: int = 120):
    """A lake with ``batches`` appended+trie-indexed files."""
    clock = SimClock(start=1_000_000.0)
    store = InMemoryObjectStore(clock=clock)
    lake = LakeTable.create(
        store,
        "lake/events",
        EVENT_SCHEMA,
        TableConfig(row_group_rows=200, page_target_bytes=2048),
    )
    for i in range(batches):
        lake.append(event_batch(rows, seed=i + 1))
        _make_client(store).index("uuid", "uuid_trie")
    return clock, store


class TestCrashMatrices:
    def test_index_every_crash_point_recoverable(self):
        clock, store = _base_lake(batches=1)
        LakeTable.open(store, "lake/events").append(event_batch(120, seed=9))
        matrix = crash_matrix(
            store,
            _make_client,
            "index",
            lambda c: c.index("uuid", "uuid_trie"),
            compare="coverage",  # index keys are salted; compare logically
        )
        assert matrix.mutations >= 2  # index file + commit (+ checkpoint)
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() <= set(CRASH_POINTS)
        assert "index:put-index-file" in matrix.crash_points()
        assert "index:put-meta-commit" in matrix.crash_points()

    def test_compact_every_crash_point_byte_identical(self):
        clock, store = _base_lake(batches=2)
        matrix = crash_matrix(
            store,
            _make_client,
            "compact",
            lambda c: compact_indices(c, "uuid", "uuid_trie"),
            compare="bytes",
        )
        assert matrix.mutations >= 2  # merged file + commit (+ checkpoint)
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() <= set(CRASH_POINTS)
        assert "compact:put-merged-index" in matrix.crash_points()
        assert "compact:put-meta-commit" in matrix.crash_points()
        assert "compact:put-meta-checkpoint" in matrix.crash_points()

    def test_vacuum_every_crash_point_byte_identical(self):
        clock, store = _base_lake(batches=2)
        compact_indices(_make_client(store), "uuid", "uuid_trie")
        clock.advance(7200.0)  # age superseded files past the timeout
        snapshot_id = LakeTable.open(store, "lake/events").latest_version()
        matrix = crash_matrix(
            store,
            _make_client,
            "vacuum",
            lambda c: vacuum_indices(c, snapshot_id=snapshot_id),
            compare="bytes",
        )
        # commit (+ checkpoint) + two physical deletions
        assert matrix.mutations >= 3
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() <= set(CRASH_POINTS)
        assert "vacuum:put-meta-commit" in matrix.crash_points()
        assert "vacuum:delete-index-file" in matrix.crash_points()

    def test_matrix_describe_reports_outcomes(self):
        clock, store = _base_lake(batches=2)
        matrix = crash_matrix(
            store,
            _make_client,
            "compact",
            lambda c: compact_indices(c, "uuid", "uuid_trie"),
            compare="bytes",
        )
        text = matrix.describe()
        assert "all recoverable" in text
        assert "compact:put-meta-commit" in text

    def test_rejects_unknown_compare_mode(self):
        clock, store = _base_lake(batches=1)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            crash_matrix(
                store,
                _make_client,
                "index",
                lambda c: c.index("uuid", "uuid_trie"),
                compare="fuzzy",
            )


# ---------------------------------------------------------------------
# parallel maintenance: same crash points, same recoveries
# ---------------------------------------------------------------------
class TestParallelCrashMatrices:
    """The worker-pool paths must be crash-safe at every boundary the
    serial paths have — and at no boundary the registry doesn't know
    (see docs/protocol.md, "Parallel maintenance adds no new crash
    points")."""

    def test_parallel_index_every_crash_point_recoverable(self):
        clock, store = _base_lake(batches=1)
        LakeTable.open(store, "lake/events").append(event_batch(120, seed=9))
        matrix = crash_matrix(
            store,
            _make_client,
            "index",
            lambda c: c.index("uuid", "uuid_trie", workers=4),
            compare="coverage",
        )
        assert matrix.mutations >= 2
        assert matrix.all_recoverable, matrix.describe()
        # Fanning the extraction reads changed no mutation boundary.
        assert matrix.crash_points() <= set(CRASH_POINTS)
        assert "index:put-index-file" in matrix.crash_points()
        assert "index:put-meta-commit" in matrix.crash_points()

    def test_parallel_compact_every_crash_point_byte_identical(self):
        clock, store = _base_lake(batches=4)
        # A small packing target splits the four per-file indices into
        # two merge groups, so merged-index PUTs really do race across
        # workers instead of collapsing into one task.
        target = 2 * max(
            r.size for r in _make_client(store).meta.records()
        ) + 1
        matrix = crash_matrix(
            store,
            _make_client,
            "compact",
            lambda c: compact_indices(
                c, "uuid", "uuid_trie", target_bytes=target, workers=4
            ),
            compare="bytes",
        )
        assert matrix.mutations >= 3  # two merged uploads + commit
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() <= set(CRASH_POINTS)
        assert "compact:put-merged-index" in matrix.crash_points()
        assert "compact:put-meta-commit" in matrix.crash_points()

    def test_worker_crash_propagates_and_orphans_recover(self):
        """A crash inside one compactor worker kills the whole run
        before the commit; sibling uploads already in flight are
        content-addressed orphans a plain re-run converges over."""
        from repro.chaos.harness import _logical_state

        clock, store = _base_lake(batches=4)
        target = 2 * max(
            r.size for r in _make_client(store).meta.records()
        ) + 1

        reference = store.clone()
        compact_indices(
            _make_client(reference), "uuid", "uuid_trie", target_bytes=target
        )

        wrecked = store.clone()
        faulty = FaultyObjectStore(wrecked)
        faulty.crash_after("PUT", "/files/")  # first merged-index upload
        with pytest.raises(SimulatedCrash):
            compact_indices(
                _make_client(faulty),
                "uuid",
                "uuid_trie",
                target_bytes=target,
                workers=4,
            )
        # No commit happened: searches still plan the small indices.
        crashed_meta = _make_client(wrecked).meta.records()
        base_meta = _make_client(store.clone()).meta.records()
        assert crashed_meta == base_meta

        # Recovery is the operation itself, serial and fault-free.
        compact_indices(
            _make_client(wrecked), "uuid", "uuid_trie", target_bytes=target
        )
        assert _logical_state(wrecked) == _logical_state(reference)


# ---------------------------------------------------------------------
# the randomized fuzzer
# ---------------------------------------------------------------------
class TestProtocolFuzzer:
    def test_clean_seeded_run(self):
        report = run_chaos(ChaosConfig(ops=120, seed=1))
        assert report.ok, report.describe()
        assert report.steps == 120
        assert report.searches_checked > 0
        assert set(report.crashes) <= set(CRASH_POINTS)
        assert "OK" in report.describe()

    def test_same_seed_same_history(self):
        a = ProtocolFuzzer(ChaosConfig(ops=80, seed=3)).run()
        b = ProtocolFuzzer(ChaosConfig(ops=80, seed=3)).run()
        assert a.actions == b.actions
        assert a.crashes == b.crashes
        assert a.recoveries == b.recoveries
        assert a.searches_checked == b.searches_checked
        assert a.degraded_queries == b.degraded_queries

    def test_report_carries_replay_command(self):
        config = ChaosConfig(ops=10, seed=42)
        report = run_chaos(config)
        assert "--ops 10" in report.replay_command()
        assert "--seed 42" in report.replay_command()

    def test_detects_planted_invariant_violation(self):
        """A fuzzer that can't fail is no fuzzer: delete a live index
        file behind the protocol's back and the next audit must object."""
        fuzzer = ProtocolFuzzer(ChaosConfig(ops=0, seed=0))
        # Seed some indexed state by hand, then vandalize it; with zero
        # protocol steps the run reduces to its final invariant audit.
        fuzzer._append()
        fuzzer._fresh_client().index("uuid", "uuid_trie")
        victim = fuzzer._fresh_client().meta.records()[0].index_key
        fuzzer.store.delete(victim)
        report = fuzzer.run()
        assert not report.ok
        assert any(
            "invariant" in v.detail.lower() for v in report.violations
        ) or not report.final_invariants_ok
        assert "replay with:" in report.describe()


class TestChaosCli:
    def test_chaos_subcommand_clean_exit(self, capsys):
        assert main(["chaos", "--ops", "60", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "chaos run" in out
        assert "OK" in out

    def test_chaos_subcommand_fast_mode(self, capsys):
        assert main(["chaos", "--ops", "40", "--seed", "2", "--fast"]) == 0


class TestCrashTimeline:
    def test_crash_event_is_marked_on_rendered_timeline(self):
        """The doomed run's timeline must make the crash boundary loud."""
        from repro.obs.export import render_timeline
        from repro.obs.trace import Tracer, use_tracer

        store = FaultyObjectStore(InMemoryObjectStore())
        store.crash_after("PUT")
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(SimulatedCrash):
                with tracer.span("doomed"):
                    store.put("idx/files/x.index", b"v")
        root = tracer.last_root("doomed")
        assert root is not None
        assert "‼ CRASH PUT idx/files/x.index" in render_timeline(root)

"""Bloom-filter index: correctness, FP rates, merging, client use."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RottnestIndexError
from repro.core.client import RottnestClient
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.core.queries import UuidQuery
from repro.formats.page_reader import PageEntry, PageTable
from repro.indices.bloom import BloomBuilder, BloomQuerier, PageBloom
from repro.storage.object_store import InMemoryObjectStore
from repro.util.binio import BinaryReader, BinaryWriter

from tests.conftest import event_uuid


def key_of(i: int) -> bytes:
    return hashlib.sha256(str(i).encode()).digest()[:16]


def store_bloom(builder, n_pages, **write_kwargs):
    table = PageTable(
        "f.parquet",
        "uuid",
        [
            PageEntry("f.parquet", i, 4 + i * 100, 100, 10, i * 10, 1)
            for i in range(n_pages)
        ],
    )
    w = IndexFileWriter("bloom", "uuid", PageDirectory([table]))
    builder.write(w, **write_kwargs)
    store = InMemoryObjectStore()
    store.put("b.index", w.finish())
    return store, BloomQuerier(IndexFileReader.open(store, "b.index"))


class TestPageBloom:
    def test_contains_all_inserted(self):
        keys = [key_of(i) for i in range(500)]
        bloom = PageBloom.build(0, keys, bits_per_key=12, num_hashes=7)
        assert all(bloom.might_contain(k) for k in keys)

    def test_false_positive_rate_bounded(self):
        keys = [key_of(i) for i in range(1000)]
        bloom = PageBloom.build(0, keys, bits_per_key=12, num_hashes=7)
        absent = [key_of(10_000 + i) for i in range(2000)]
        fp = sum(bloom.might_contain(k) for k in absent) / len(absent)
        # Theory for 12 bits/key, 7 hashes: ~0.3%; allow headroom.
        assert fp < 0.02

    def test_fewer_bits_more_false_positives(self):
        keys = [key_of(i) for i in range(1000)]
        tight = PageBloom.build(0, keys, bits_per_key=4, num_hashes=3)
        loose = PageBloom.build(0, keys, bits_per_key=16, num_hashes=7)
        absent = [key_of(10_000 + i) for i in range(2000)]
        fp_tight = sum(tight.might_contain(k) for k in absent)
        fp_loose = sum(loose.might_contain(k) for k in absent)
        assert fp_loose < fp_tight

    def test_serialize_roundtrip(self):
        bloom = PageBloom.build(3, [key_of(1)], bits_per_key=10, num_hashes=5)
        w = BinaryWriter()
        bloom.serialize(w)
        back = PageBloom.deserialize(BinaryReader(w.getvalue()))
        assert back.gid == 3
        assert back.num_bits == bloom.num_bits
        assert back.might_contain(key_of(1))


class TestBloomBuilder:
    def test_empty_rejected(self):
        with pytest.raises(RottnestIndexError):
            BloomBuilder.build([])

    def test_empty_query_rejected(self):
        builder = BloomBuilder.build([(0, [key_of(1)])])
        _, q = store_bloom(builder, 1)
        with pytest.raises(RottnestIndexError):
            q.candidate_pages(b"")

    def test_no_false_negatives(self):
        pages = [(g, [key_of(g * 100 + i) for i in range(100)]) for g in range(8)]
        builder = BloomBuilder.build(pages)
        _, q = store_bloom(builder, 8)
        for g, keys in pages:
            assert g in q.candidate_pages(keys[0])
            assert g in q.candidate_pages(keys[-1])

    def test_absent_keys_few_pages(self):
        pages = [(g, [key_of(g * 100 + i) for i in range(100)]) for g in range(8)]
        builder = BloomBuilder.build(pages)
        _, q = store_bloom(builder, 8)
        total = sum(
            len(q.candidate_pages(key_of(50_000 + i))) for i in range(100)
        )
        assert total <= 10  # ~0.3% FP x 8 pages x 100 probes

    def test_single_parallel_round(self):
        pages = [
            (g, [key_of(g * 1000 + i) for i in range(1000)]) for g in range(20)
        ]
        builder = BloomBuilder.build(pages)
        store, _ = store_bloom(builder, 20, component_target_bytes=4096)
        q = BloomQuerier(IndexFileReader.open(store, "b.index"))
        store.start_trace()
        q.candidate_pages(key_of(5))
        trace = store.stop_trace()
        assert trace.depth <= 1  # all components in one round

    def test_load_roundtrip(self):
        pages = [(g, [key_of(g * 10 + i) for i in range(10)]) for g in range(4)]
        builder = BloomBuilder.build(pages)
        _, q = store_bloom(builder, 4, component_target_bytes=128)
        loaded = BloomBuilder.load(q.reader)
        assert [b.gid for b in loaded.blooms] == [0, 1, 2, 3]
        assert loaded.blooms[2].might_contain(key_of(21))

    def test_merge_shifts_gids(self):
        b1 = BloomBuilder.build([(0, [key_of(1)]), (1, [key_of(2)])])
        b2 = BloomBuilder.build([(0, [key_of(3)])])
        merged = BloomBuilder.merge([b1, b2], [0, 2])
        _, q = store_bloom(merged, 3)
        # No false negatives after the shift (tiny 12-bit filters may
        # add false-positive pages; the client's probing absorbs those).
        assert 2 in q.candidate_pages(key_of(3))
        assert 0 in q.candidate_pages(key_of(1))

    def test_merge_mismatch_rejected(self):
        b = BloomBuilder.build([(0, [key_of(1)])])
        with pytest.raises(RottnestIndexError):
            BloomBuilder.merge([b], [0, 1])

    @given(
        st.lists(st.binary(min_size=1, max_size=20), min_size=1, max_size=40,
                 unique=True),
        st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_false_negatives_property(self, keys, n_pages):
        pages = {g: [] for g in range(n_pages)}
        truth = {}
        for i, key in enumerate(keys):
            pages[i % n_pages].append(key)
            truth.setdefault(key, set()).add(i % n_pages)
        pages = {g: v for g, v in pages.items() if v}
        builder = BloomBuilder.build(list(pages.items()))
        _, q = store_bloom(builder, n_pages)
        for key, expected in truth.items():
            assert expected <= set(q.candidate_pages(key))


class TestBloomThroughClient:
    def test_uuid_query_served_by_bloom_index(self, store, event_lake):
        client = RottnestClient(store, "idx/events", event_lake)
        record = client.index("uuid", "bloom")
        assert record.index_type == "bloom"
        key = event_uuid(1, 7)
        res = client.search("uuid", UuidQuery(key), k=5)
        assert len(res.matches) == 1
        assert bytes(res.matches[0].value) == key
        assert res.stats.files_brute_forced == 0

    def test_trie_preferred_over_bloom_on_tie(self, store, event_lake):
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("uuid", "bloom")
        client.index("uuid", "uuid_trie")
        key = event_uuid(2, 3)
        res = client.search("uuid", UuidQuery(key), k=5)
        assert len(res.matches) == 1
        # Same created_at second: the trie ranks first in
        # UuidQuery.index_types, so exactly one index file is queried.
        assert res.stats.index_files_queried == 1

    def test_bloom_much_smaller_than_trie(self, store, event_lake):
        client = RottnestClient(store, "idx/events", event_lake)
        bloom = client.index("uuid", "bloom")
        trie = client.index("uuid", "uuid_trie")
        assert bloom.size < trie.size

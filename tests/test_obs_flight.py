"""Flight recorder: tail sampling, bounds, persistence, e2e fault run.

The recorder's contract has three load-bearing pieces this file pins:

* **selectivity** — retain exactly errored queries, SLO-window
  breaches, and latencies at or above the live tail quantile (with a
  warmup floor, so the first queries never all classify as "tail");
* **bounded residency** — a hypothesis property drives arbitrary
  arrival/latency/error sequences and asserts the retained count and
  resident bytes never exceed the configured budgets;
* **debuggability end-to-end** — a seeded serving run with an injected
  8x-slow storage fault must retain the slow query, name the slow
  phase on its critical path, surface it as the dashboard's p99
  exemplar link, and render through ``repro traces``.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.obs.flight import (
    FlightRecorder,
    FlightTrace,
    get_flight_recorder,
    list_flights,
    load_flight,
    load_flights,
    use_flight_recorder,
)
from repro.obs.slo import default_slo
from repro.obs.timeseries import TelemetryHub, use_hub
from repro.obs.trace import Tracer, use_tracer
from repro.serve import SearchServer
from repro.storage.localfs import LocalFSObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock


def _finished_root(tracer: Tracer, clock: SimClock, *, latency_s: float, query: str):
    """One finished serve.query span tree with a phase-tagged child."""
    with tracer.span("serve.query", query=query) as root:
        with tracer.span("index.probe", phase="index"):
            clock.advance(latency_s * 0.25)
        with tracer.span("data.fetch", phase="data"):
            clock.advance(latency_s * 0.75)
    return root


def _recorder_env():
    clock = SimClock(start=1_000.0)
    tracer = Tracer(clock=clock)
    return clock, tracer


class TestRetentionPolicy:
    def test_error_is_always_retained(self):
        clock, tracer = _recorder_env()
        recorder = FlightRecorder()
        root = _finished_root(tracer, clock, latency_s=0.01, query="q")
        flight = recorder.record(
            root, latency_s=0.01, at_s=clock.now(), error=True
        )
        assert flight is not None and flight.reason == "error"
        # The live span now carries the id — the exemplar hook.
        assert root.attributes["trace_id"] == flight.trace_id
        assert recorder.get(flight.trace_id[:6]) is flight

    def test_no_tail_retention_during_warmup(self):
        clock, tracer = _recorder_env()
        recorder = FlightRecorder(min_samples=20)
        for i in range(19):
            root = _finished_root(tracer, clock, latency_s=0.5, query=f"q{i}")
            assert (
                recorder.record(root, latency_s=0.5, at_s=clock.now()) is None
            )
        assert recorder.threshold_s() is None
        assert recorder.observed == 19 and len(recorder) == 0

    def test_tail_above_live_quantile_is_retained(self):
        clock, tracer = _recorder_env()
        recorder = FlightRecorder(min_samples=10, tail_quantile=0.99)
        for i in range(30):
            root = _finished_root(tracer, clock, latency_s=0.01, query=f"q{i}")
            recorder.record(root, latency_s=0.01, at_s=clock.now())
        threshold = recorder.threshold_s()
        assert threshold is not None and threshold < 0.1
        slow = _finished_root(tracer, clock, latency_s=1.0, query="slow")
        flight = recorder.record(slow, latency_s=1.0, at_s=clock.now())
        assert flight is not None and flight.reason == "tail"
        # The slowest child (data.fetch, 750ms of self time) names the
        # phase even without a bill attached.
        assert flight.slow_phase == "data"

    def test_slo_breach_is_retained(self):
        clock, tracer = _recorder_env()
        slo = default_slo(latency_p99_s=0.001)
        recorder = FlightRecorder(slo=slo)
        hub = TelemetryHub()
        for _ in range(50):
            hub.quantiles("serve.latency_s").observe(1.0, at_s=clock.now())
            hub.series("serve.queries").observe(1.0, at_s=clock.now())
        assert not slo.evaluate(hub).ok
        root = _finished_root(tracer, clock, latency_s=0.01, query="q")
        flight = recorder.record(
            root, latency_s=0.01, at_s=clock.now(), hub=hub
        )
        assert flight is not None and flight.reason == "slo-breach"

    def test_hedged_retry_is_skipped(self):
        clock, tracer = _recorder_env()
        recorder = FlightRecorder()
        with tracer.span("router.hedge", hedge=True, origin_trace_id="abc"):
            root = _finished_root(tracer, clock, latency_s=0.5, query="q")
        assert (
            recorder.record(
                root, latency_s=0.5, at_s=clock.now(), error=True
            )
            is None
        )
        assert recorder.hedges_skipped == 1 and recorder.observed == 0

    def test_unfinished_or_missing_root_ignored(self):
        recorder = FlightRecorder()
        assert recorder.record(None, latency_s=0.1, at_s=0.0) is None


class TestBounds:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(
                    min_value=1e-4, max_value=10.0,
                    allow_nan=False, allow_infinity=False,
                ),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_count_and_bytes_never_exceed_budgets(self, arrivals):
        """Under ANY arrival/latency/error sequence the ring respects
        both the trace-count capacity and the resident-byte budget."""
        clock, tracer = _recorder_env()
        recorder = FlightRecorder(
            capacity=4, budget_bytes=8192, min_samples=3
        )
        for i, (latency_s, error) in enumerate(arrivals):
            root = _finished_root(
                tracer, clock, latency_s=latency_s, query=f"q{i}"
            )
            recorder.record(
                root, latency_s=latency_s, at_s=clock.now(), error=error
            )
            assert len(recorder) <= 4
            assert recorder.resident_bytes <= 8192
        assert recorder.resident_bytes == sum(
            t.nbytes for t in recorder.traces()
        )

    def test_eviction_is_oldest_first(self):
        clock, tracer = _recorder_env()
        recorder = FlightRecorder(capacity=2)
        ids = []
        for i in range(3):
            root = _finished_root(
                tracer, clock, latency_s=0.1 + i, query=f"q{i}"
            )
            flight = recorder.record(
                root, latency_s=0.1 + i, at_s=clock.now(), error=True
            )
            ids.append(flight.trace_id)
        assert [t.trace_id for t in recorder.traces()] == ids[1:]
        assert recorder.evicted == 1


class TestPersistence:
    def _retained(self, n=2):
        """Recorder holding ``n`` traces with FIXED span ids, so every
        call produces byte-identical content (the global span-id
        counter would otherwise change the content hash per run)."""
        from repro.obs.export import span_tree_from_dicts

        recorder = FlightRecorder()
        for i in range(n):
            base = (i + 1) * 10
            root = span_tree_from_dicts(
                [
                    {
                        "span_id": base + 1, "parent_id": None,
                        "name": "serve.query", "start_s": 0.0,
                        "end_s": 0.1 + i, "thread": "main",
                        "attributes": {"query": f"q{i}"}, "events": [],
                    },
                    {
                        "span_id": base + 2, "parent_id": base + 1,
                        "name": "data.fetch", "start_s": 0.0,
                        "end_s": 0.1 + i, "thread": "main",
                        "attributes": {"phase": "data"}, "events": [],
                    },
                ]
            )
            recorder.record(
                root, latency_s=0.1 + i, at_s=1_000.0, error=True
            )
        return recorder

    def test_persist_is_idempotent(self):
        store = InMemoryObjectStore(clock=SimClock(start=0.0))
        recorder = self._retained()
        assert recorder.persist(store) == 2
        before = store.stats.snapshot()
        assert recorder.persist(store) == 0
        delta = store.stats.snapshot().delta(before)
        assert delta.puts == 0
        # A fresh recorder holding identical traces also idles: the
        # keys are content-addressed, existence is checked first.
        again = self._retained()
        before = store.stats.snapshot()
        assert again.persist(store) == 0
        assert store.stats.snapshot().delta(before).puts == 0

    def test_round_trip_and_prefix_load(self):
        store = InMemoryObjectStore(clock=SimClock(start=0.0))
        recorder = self._retained()
        recorder.persist(store)
        ids = list_flights(store)
        assert len(ids) == 2
        flight = load_flight(store, ids[0][:8])
        assert isinstance(flight, FlightTrace)
        assert flight.to_dict() == recorder.get(ids[0]).to_dict()
        # Rebuilt span tree walks and renders.
        assert flight.root().name == "serve.query"
        loaded = load_flights(store)
        assert [f.latency_s for f in loaded] == sorted(
            (f.latency_s for f in loaded), reverse=True
        )

    def test_prefix_errors(self):
        store = InMemoryObjectStore(clock=SimClock(start=0.0))
        recorder = self._retained()
        recorder.persist(store)
        with pytest.raises(ReproError):
            load_flight(store, "")  # ambiguous: matches both
        with pytest.raises(ReproError):
            load_flight(store, "zzzzzz")  # matches none


class TestGlobalAccessor:
    def test_use_flight_recorder_scopes_and_restores(self):
        assert get_flight_recorder() is None
        recorder = FlightRecorder()
        with use_flight_recorder(recorder):
            assert get_flight_recorder() is recorder
        assert get_flight_recorder() is None


class TestSeededSlowFault:
    """The acceptance path: an injected 8x-slow fault must be retained,
    attributed, linked from the dashboard, and renderable by CLI."""

    def _run(self, indexed_client, n_warm=25):
        from repro.core.queries import SubstringQuery

        clock = indexed_client.store.clock
        tracer = Tracer(clock=clock)
        hub = TelemetryHub()
        recorder = FlightRecorder(min_samples=10)
        server = SearchServer(indexed_client)
        query = SubstringQuery("the")
        with use_tracer(tracer), use_hub(hub), use_flight_recorder(recorder):
            with server:
                for _ in range(n_warm):
                    server.query("text", query, k=5)
                baseline = server.stats.last_latency_s
                normal = server.latency_model
                server.latency_model = dataclasses.replace(
                    normal,
                    first_byte_s=normal.first_byte_s * 8,
                    stream_bandwidth_bps=normal.stream_bandwidth_bps / 8,
                )
                try:
                    server.query("text", query, k=5)
                finally:
                    server.latency_model = normal
                slow_latency = server.stats.last_latency_s
        # Request fan-out absorbs part of the 8x per-request slowdown;
        # the modeled end-to-end latency still jumps well clear of the
        # live tail threshold.
        assert slow_latency > baseline * 2
        return recorder, hub

    def test_slow_query_retained_with_named_phase(self, indexed_client):
        recorder, hub = self._run(indexed_client)
        assert len(recorder) >= 1
        flight = max(recorder.traces(), key=lambda f: f.latency_s)
        assert flight.reason == "tail"
        # The critical path names the phase the bill says dominated.
        assert flight.slow_phase
        phases = {p["phase"]: p["est_latency_s"] for p in flight.bill["phases"]}
        assert flight.slow_phase == max(phases, key=phases.get)
        assert any(
            s["phase"] == flight.slow_phase for s in flight.critical_path
        )

    def test_dashboard_links_p99_exemplar_to_retained_trace(
        self, indexed_client
    ):
        from repro.obs.dashboard import render_dashboard

        recorder, hub = self._run(indexed_client)
        flight = max(recorder.traces(), key=lambda f: f.latency_s)
        merged = hub.quantiles("serve.latency_s").merged()
        assert merged.exemplar is not None
        assert merged.exemplar[1] == flight.trace_id
        html = render_dashboard(hub, flights=recorder)
        assert f"href='#flight-{flight.trace_id}'" in html
        assert f"id='flight-{flight.trace_id}'" in html
        assert flight.slow_phase in html

    def test_repro_traces_renders_retained_trace(
        self, indexed_client, tmp_path, capsys
    ):
        from repro.cli import main

        recorder, _ = self._run(indexed_client)
        flight = max(recorder.traces(), key=lambda f: f.latency_s)
        bucket = LocalFSObjectStore(str(tmp_path / "bucket"))
        recorder.persist(bucket)
        code = main(
            ["traces", flight.trace_id[:10], "--root", str(tmp_path / "bucket")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert flight.trace_id in out
        assert "critical path" in out
        assert flight.slow_phase in out
        assert "bill:" in out

"""CLI fsck subcommand."""

import hashlib
import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


@pytest.fixture
def deployment(tmp_path, capsys):
    bucket = str(tmp_path / "bucket")
    assert (
        main(
            [
                "create-table", "--root", bucket, "--table", "lake/t",
                "--schema", "request_id:binary",
                "--row-group-rows", "100",
            ]
        )
        == 0
    )
    rows = [
        json.dumps(
            {"request_id": hashlib.sha256(str(i).encode()).digest()[:16].hex()}
        )
        for i in range(200)
    ]
    jsonl = tmp_path / "rows.jsonl"
    jsonl.write_text("\n".join(rows))
    assert (
        main(["append", "--root", bucket, "--table", "lake/t",
              "--jsonl", str(jsonl)])
        == 0
    )
    assert (
        main(
            ["index", "--root", bucket, "--table", "lake/t",
             "--index-dir", "idx/t", "--column", "request_id",
             "--type", "uuid_trie"]
        )
        == 0
    )
    capsys.readouterr()
    return bucket


class TestCliFsck:
    def test_clean(self, deployment, capsys):
        code, out = run(
            capsys, "fsck", "--root", deployment, "--table", "lake/t",
            "--index-dir", "idx/t",
        )
        assert code == 0
        assert "invariants: OK" in out

    def test_fast_mode(self, deployment, capsys):
        code, out = run(
            capsys, "fsck", "--root", deployment, "--table", "lake/t",
            "--index-dir", "idx/t", "--fast",
        )
        assert code == 0
        assert "covered files verified: 0" in out

    def test_violation_exit_code(self, deployment, capsys, tmp_path):
        # Delete the index file behind the metadata table's back.
        from repro.storage.localfs import LocalFSObjectStore

        store = LocalFSObjectStore(deployment)
        victim = [i.key for i in store.list("idx/t/files/")][0]
        store.delete(victim)
        code, out = run(
            capsys, "fsck", "--root", deployment, "--table", "lake/t",
            "--index-dir", "idx/t",
        )
        assert code == 2
        assert "VIOLATED" in out

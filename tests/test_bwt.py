"""Suffix array / BWT primitives vs naive references."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indices.fm.bwt import (
    bwt_from_sa,
    char_counts,
    invert_bwt,
    lf_array,
    suffix_array,
)


def naive_suffix_array(text: bytes) -> list[int]:
    # Sentinel suffix (the empty one) sorts first, matching our -1
    # sentinel convention.
    return sorted(range(len(text) + 1), key=lambda i: text[i:])


class TestSuffixArray:
    @pytest.mark.parametrize(
        "text",
        [
            b"",
            b"a",
            b"aa",
            b"ab",
            b"ba",
            b"banana",
            b"mississippi",
            b"abcabcabc",
            b"\x00\x01\x00\x01",
            bytes(range(256)),
            b"zzzzzzzzzz",
        ],
    )
    def test_matches_naive(self, text):
        assert list(suffix_array(text)) == naive_suffix_array(text)

    def test_length(self):
        assert len(suffix_array(b"hello")) == 6

    def test_sentinel_first(self):
        sa = suffix_array(b"xyz")
        assert sa[0] == 3

    @given(st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_property(self, text):
        assert list(suffix_array(text)) == naive_suffix_array(text)


class TestBwt:
    def test_banana(self):
        text = b"banana"
        sa = suffix_array(text)
        bwt, si = bwt_from_sa(text, sa)
        # Classic result with sentinel: annb$aa -> our placeholder is 0.
        assert bwt[si] == 0
        assert invert_bwt(bwt, si) == text

    @pytest.mark.parametrize(
        "text", [b"", b"a", b"abracadabra", b"aaaa", b"the quick brown fox"]
    )
    def test_invert_roundtrip(self, text):
        sa = suffix_array(text)
        bwt, si = bwt_from_sa(text, sa)
        assert invert_bwt(bwt, si) == text

    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_invert_roundtrip_property(self, text):
        sa = suffix_array(text)
        bwt, si = bwt_from_sa(text, sa)
        assert invert_bwt(bwt, si) == text

    def test_char_counts(self):
        text = b"aabc"
        sa = suffix_array(text)
        bwt, si = bwt_from_sa(text, sa)
        c = char_counts(bwt, si)
        # C[c] = sentinel(1) + #chars < c.
        assert c[ord("a")] == 1
        assert c[ord("b")] == 3
        assert c[ord("c")] == 4
        assert c[256] == 5

    def test_lf_walk_visits_text_backwards(self):
        text = b"mississippi"
        sa = suffix_array(text)
        bwt, si = bwt_from_sa(text, sa)
        lf = lf_array(bwt, si)
        # Walking LF from row 0 spells the text backwards.
        out = []
        j = 0
        for _ in range(len(text)):
            out.append(bwt[j])
            j = lf[j]
        assert bytes(reversed(out)) == text

"""Critical-path extraction and median-vs-tail phase attribution."""

from __future__ import annotations

import json

import pytest

from repro.obs.critical_path import (
    TailRecorder,
    TailSample,
    critical_path,
    render_critical_path,
    tail_attribution,
)
from repro.obs.trace import Span


def _span(name, start, end, parent=None, phase=None):
    span = Span(name, parent=parent, start_s=start)
    span.end_s = end
    if parent is not None:
        parent.children.append(span)
    if phase is not None:
        span.set("phase", phase)
    return span


def _fanout_tree() -> Span:
    """A root fanning out two probes; the slow one holds the clock."""
    root = _span("search", 0.0, 1.0)
    _span("probe:fast", 0.1, 0.3, parent=root, phase="index_probe")
    slow = _span("probe:slow", 0.1, 0.9, parent=root, phase="index_probe")
    _span("page_read", 0.4, 0.85, parent=slow, phase="page_read")
    return root


class TestCriticalPath:
    def test_follows_last_finishing_child(self):
        steps = critical_path(_fanout_tree())
        assert [s.name for s in steps] == [
            "search", "probe:slow", "page_read",
        ]
        assert steps[1].phase == "index_probe"

    def test_self_times_cover_the_root(self):
        steps = critical_path(_fanout_tree())
        assert sum(s.self_s for s in steps) == pytest.approx(
            steps[0].duration_s
        )
        # root waited 0.8 on the slow probe -> 0.2 self; the probe
        # waited 0.45 on the page read -> 0.35 self.
        assert steps[0].self_s == pytest.approx(0.2)
        assert steps[1].self_s == pytest.approx(0.35)

    def test_unfinished_children_skipped(self):
        root = _span("search", 0.0, 1.0)
        dangling = Span("probe:crashed", parent=root, start_s=0.1)
        root.children.append(dangling)  # end_s stays None
        _span("probe:done", 0.1, 0.5, parent=root)
        assert [s.name for s in critical_path(root)] == [
            "search", "probe:done",
        ]

    def test_render(self):
        text = render_critical_path(critical_path(_fanout_tree()))
        assert "critical path" in text
        assert "probe:slow [index_probe]" in text
        assert "ms self" in text
        assert render_critical_path([]) == "(empty critical path)"


class TestTailRecorder:
    def test_bounded_ring(self):
        recorder = TailRecorder(capacity=3)
        for i in range(5):
            recorder.record(float(i), at_s=float(i))
        assert len(recorder) == 3
        assert [s.total_s for s in recorder.samples()] == [2.0, 3.0, 4.0]

    def test_round_trip(self):
        recorder = TailRecorder(capacity=8)
        recorder.record(
            0.5, at_s=1.0, query="q", phase_s={"plan": 0.5}, degraded=True
        )
        restored = TailRecorder.from_dict(
            json.loads(json.dumps(recorder.to_dict()))
        )
        assert restored.capacity == 8
        assert restored.samples() == recorder.samples()


class TestTailAttribution:
    def test_empty(self):
        report = tail_attribution([])
        assert report.rows == []
        assert "no phase-tagged samples" in report.headline()

    def _samples(self):
        """95 quick index-probe queries, 5 page-read-dominated stragglers."""
        samples = [
            TailSample(
                total_s=0.1,
                at_s=float(i),
                phase_s={"index_probe": 0.08, "page_read": 0.02},
            )
            for i in range(95)
        ]
        samples += [
            TailSample(
                total_s=2.0,
                at_s=float(95 + i),
                phase_s={"index_probe": 0.1, "page_read": 1.9},
            )
            for i in range(5)
        ]
        return samples

    def test_tail_vs_median_cohorts(self):
        report = tail_attribution(self._samples())
        assert report.sample_count == 100
        assert report.p50_s == 0.1
        assert report.tail_threshold_s == 2.0
        assert report.tail_count == 5
        mid = report.dominant(tail=False)
        tail = report.dominant(tail=True)
        assert mid.phase == "index_probe"
        assert tail.phase == "page_read"
        assert tail.amplification == pytest.approx(95.0)
        assert "page_read" in report.headline()
        assert "index_probe" in report.headline()

    def test_describe_table(self):
        text = tail_attribution(self._samples()).describe()
        assert "tail attribution" in text
        assert "amplif" in text
        assert "index_probe" in text

    def test_to_dict_json_safe(self):
        # Tail-only phases have an infinite amplification; the JSON dump
        # must encode that as null, not a non-JSON inf.
        samples = [
            TailSample(total_s=0.1, at_s=0.0, phase_s={"plan": 0.1})
            for _ in range(9)
        ] + [
            TailSample(
                total_s=5.0, at_s=9.0, phase_s={"brute_force": 5.0}
            )
        ]
        payload = tail_attribution(samples).to_dict()
        text = json.dumps(payload)
        assert "Infinity" not in text
        rows = {r["phase"]: r for r in payload["rows"]}
        assert rows["brute_force"]["amplification"] is None

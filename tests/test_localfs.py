"""Filesystem object store: S3 semantics on disk + end-to-end reuse."""

import pytest

from repro.errors import InvalidByteRange, ObjectNotFound, PreconditionFailed
from repro.storage.localfs import LocalFSObjectStore
from repro.util.clock import SimClock


@pytest.fixture
def store(tmp_path):
    return LocalFSObjectStore(str(tmp_path / "bucket"), clock=SimClock(1000.0))


class TestLocalFS:
    def test_put_get_roundtrip(self, store):
        store.put("a/b/c", b"data")
        assert store.get("a/b/c") == b"data"

    def test_missing_raises(self, store):
        with pytest.raises(ObjectNotFound):
            store.get("nope")
        with pytest.raises(ObjectNotFound):
            store.head("nope")

    def test_byte_range(self, store):
        store.put("k", b"0123456789")
        assert store.get("k", (3, 4)) == b"3456"
        with pytest.raises(InvalidByteRange):
            store.get("k", (8, 5))

    def test_conditional_put(self, store):
        store.put("log/0", b"v0", if_none_match=True)
        with pytest.raises(PreconditionFailed):
            store.put("log/0", b"other", if_none_match=True)
        assert store.get("log/0") == b"v0"

    def test_list_prefix(self, store):
        store.put("t/b", b"2")
        store.put("t/a", b"1")
        store.put("u/c", b"3")
        assert [i.key for i in store.list("t/")] == ["t/a", "t/b"]

    def test_mtime_from_clock(self, store):
        store.clock.advance(42)
        info = store.put("k", b"x")
        assert info.mtime == 1042.0
        assert store.head("k").mtime == 1042.0

    def test_delete_idempotent(self, store):
        store.put("k", b"x")
        store.delete("k")
        store.delete("k")
        assert not store.exists("k")

    @pytest.mark.parametrize("key", ["", "/abs", "a/../b"])
    def test_path_traversal_rejected(self, store, key):
        with pytest.raises(ValueError):
            store.put(key, b"x")

    def test_persists_across_instances(self, tmp_path):
        root = str(tmp_path / "bucket")
        LocalFSObjectStore(root).put("k", b"durable")
        assert LocalFSObjectStore(root).get("k") == b"durable"


class TestLakeOnLocalFS:
    def test_full_rottnest_cycle(self, tmp_path):
        """Lake + index + search entirely on disk, across 'processes'
        (separate store instances)."""
        from repro.core.client import RottnestClient
        from repro.core.queries import SubstringQuery
        from repro.formats.schema import ColumnType, Field, Schema
        from repro.lake.table import LakeTable, TableConfig

        root = str(tmp_path / "bucket")
        writer_store = LocalFSObjectStore(root)
        schema = Schema.of(Field("t", ColumnType.STRING))
        lake = LakeTable.create(
            writer_store, "lake/t", schema,
            TableConfig(row_group_rows=100, page_target_bytes=1024),
        )
        lake.append({"t": [f"document {i} words here" for i in range(300)]})
        indexer_store = LocalFSObjectStore(root)
        indexer_lake = LakeTable.open(indexer_store, "lake/t")
        RottnestClient(indexer_store, "idx/t", indexer_lake).index("t", "fm")

        searcher_store = LocalFSObjectStore(root)
        searcher_lake = LakeTable.open(searcher_store, "lake/t")
        client = RottnestClient(searcher_store, "idx/t", searcher_lake)
        res = client.search("t", SubstringQuery("document 42 "), k=5)
        assert len(res.matches) == 1
        assert res.stats.files_brute_forced == 0

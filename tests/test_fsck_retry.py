"""fsck integrity auditor + retrying store wrapper."""

import pytest

from repro.errors import InjectedFault, ObjectNotFound, PreconditionFailed
from repro.core.client import RottnestClient
from repro.core.fsck import fsck
from repro.core.maintenance import vacuum_indices
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.retry import RetryingObjectStore
from repro.util.clock import SimClock

from tests.conftest import event_batch


class TestFsck:
    def test_clean_deployment(self, indexed_client):
        report = fsck(indexed_client)
        assert report.invariants_hold
        assert report.records_checked == 3
        assert report.files_verified > 0
        assert report.orphan_index_files == []
        assert "OK" in report.describe()

    def test_detects_missing_index_file(self, indexed_client, store):
        victim = indexed_client.meta.records()[0].index_key
        store.delete(victim)
        report = fsck(indexed_client)
        assert not report.invariants_hold
        assert victim in report.missing_index_files
        assert "MISSING" in report.describe()

    def test_detects_corrupt_index_file(self, indexed_client, store):
        victim = indexed_client.meta.records()[0].index_key
        store.put(victim, b"garbage" * 10)
        report = fsck(indexed_client)
        assert victim in report.corrupt_index_files
        assert not report.invariants_hold

    def test_detects_orphans(self, store, event_lake):
        faulty = FaultyObjectStore(store)
        client = RottnestClient(faulty, "idx/events", event_lake)
        faulty.fail_next("PUT", "_meta")
        with pytest.raises(InjectedFault):
            client.index("uuid", "uuid_trie")
        report = fsck(client)
        assert report.invariants_hold  # orphan is not a violation
        assert len(report.orphan_index_files) == 1

    def test_flags_stale_records(self, indexed_client, event_lake):
        event_lake.compact(min_file_rows=1000, target_rows=10_000)
        report = fsck(indexed_client)
        # Old records now cover only removed files.
        assert len(report.stale_records) == 3
        assert report.invariants_hold  # consistency vacuous, existence ok

    def test_existence_only_mode(self, indexed_client):
        report = fsck(indexed_client, verify_consistency=False)
        assert report.invariants_hold
        assert report.files_verified == 0

    def test_clean_after_vacuum(self, indexed_client, event_lake, clock):
        event_lake.compact(min_file_rows=1000, target_rows=10_000)
        indexed_client.index("uuid", "uuid_trie")
        vacuum_indices(indexed_client, snapshot_id=event_lake.latest_version())
        clock.advance(indexed_client.index_timeout_s + 1)
        vacuum_indices(indexed_client, snapshot_id=event_lake.latest_version())
        report = fsck(indexed_client)
        assert report.invariants_hold
        assert report.orphan_index_files == []
        assert report.stale_records == []


class TestRetryingStore:
    @pytest.fixture
    def stack(self):
        inner = InMemoryObjectStore(clock=SimClock())
        faulty = FaultyObjectStore(inner)
        retrying = RetryingObjectStore(faulty, max_attempts=4)
        return inner, faulty, retrying

    def test_transient_get_retried(self, stack):
        inner, faulty, retrying = stack
        inner.put("k", b"v")
        faulty.fail_next("GET")
        assert retrying.get("k") == b"v"
        assert retrying.retries == 1

    def test_repeated_failures_exhaust(self, stack):
        inner, faulty, retrying = stack
        inner.put("k", b"v")
        for _ in range(4):
            faulty.fail_next("GET")
        with pytest.raises(InjectedFault):
            retrying.get("k")
        assert retrying.retries == 4

    def test_permanent_errors_not_retried(self, stack):
        _, _, retrying = stack
        with pytest.raises(ObjectNotFound):
            retrying.get("missing")
        assert retrying.retries == 0

    def test_conditional_put_not_retried(self, stack):
        inner, faulty, retrying = stack
        faulty.fail_next("PUT")
        with pytest.raises(InjectedFault):
            retrying.put("log/0", b"x", if_none_match=True)
        assert retrying.retries == 0
        # The CAS semantics are intact for the caller's own retry.
        retrying.put("log/0", b"x", if_none_match=True)
        with pytest.raises(PreconditionFailed):
            retrying.put("log/0", b"y", if_none_match=True)

    def test_plain_put_retried(self, stack):
        inner, faulty, retrying = stack
        faulty.fail_next("PUT")
        retrying.put("k", b"v")
        assert inner.get("k") == b"v"

    def test_backoff_advances_sim_clock(self, stack):
        inner, faulty, retrying = stack
        inner.put("k", b"v")
        start = inner.clock.now()
        faulty.fail_next("GET")
        retrying.get("k")
        assert inner.clock.now() > start

    def test_end_to_end_through_flaky_store(self):
        """A full index+search cycle succeeds through a store that
        throws a transient error every few operations."""
        from repro.core.queries import UuidQuery
        from tests.conftest import EVENT_SCHEMA, event_uuid
        from repro.lake.table import LakeTable, TableConfig

        inner = InMemoryObjectStore(clock=SimClock())
        faulty = FaultyObjectStore(inner)
        retrying = RetryingObjectStore(faulty, max_attempts=5)
        lake = LakeTable.create(
            retrying, "lake/f", EVENT_SCHEMA,
            TableConfig(row_group_rows=200, page_target_bytes=2048),
        )
        lake.append(event_batch(200, seed=1))
        client = RottnestClient(retrying, "idx/f", lake)
        # Sprinkle transient GET failures ahead of the work.
        for countdown in (3, 9, 17, 31):
            faulty.fail_next("GET", countdown=countdown)
        client.index("uuid", "uuid_trie")
        res = client.search("uuid", UuidQuery(event_uuid(1, 5)), k=5)
        assert len(res.matches) == 1
        assert retrying.retries >= 1

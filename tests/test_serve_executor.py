"""SearchExecutor: concurrent results identical to sequential search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.queries import SubstringQuery, UuidQuery, VectorQuery
from repro.errors import RottnestIndexError
from repro.serve import SearchExecutor

from tests.conftest import event_batch, event_uuid


def _shape(result):
    """Everything a caller can observe, minus the request trace."""
    return (
        [(m.file, m.row, m.score) for m in result.matches],
        result.stats.index_files_queried,
        result.stats.candidates,
        result.stats.pages_probed,
        result.stats.false_positives,
        result.stats.files_brute_forced,
    )


WORKLOAD_QUERIES = [
    ("uuid", UuidQuery(event_uuid(1, 5))),
    ("uuid", UuidQuery(event_uuid(2, 123))),
    ("uuid", UuidQuery(b"\x00" * 16)),  # absent
    ("text", SubstringQuery(event_batch(300, seed=1)["text"][10][:8])),
    ("text", SubstringQuery("no-such-substring-anywhere")),
    (
        "emb",
        VectorQuery(
            np.random.default_rng(0).normal(size=16).astype(np.float32),
            nprobe=8,
            refine=64,
        ),
    ),
]


@pytest.mark.parametrize("width", [1, 3, 8])
def test_matches_sequential_search(indexed_client, width):
    """Across the UUID, substring, and vector workloads the executor's
    matches and counters equal ``RottnestClient.search`` exactly."""
    with SearchExecutor(indexed_client, max_searchers=width) as executor:
        for column, query in WORKLOAD_QUERIES:
            sequential = indexed_client.search(column, query, k=5)
            concurrent = executor.search(column, query, k=5)
            assert _shape(concurrent) == _shape(sequential), (column, query)
            # Same requests are issued regardless of fan-out width; only
            # the trace's parallel structure (and thus latency) changes.
            assert (
                concurrent.stats.trace.total_requests
                == sequential.stats.trace.total_requests
            )


def test_brute_force_path_equivalent(indexed_client):
    """An appended-but-unindexed file exercises the brute-force fill."""
    indexed_client.lake.append(event_batch(300, seed=3))
    queries = [
        ("uuid", UuidQuery(event_uuid(3, 7))),  # only in the new file
        ("uuid", UuidQuery(event_uuid(1, 5))),  # covered by the index
        ("text", SubstringQuery(event_batch(300, seed=3)["text"][0][:10])),
        (
            "emb",
            VectorQuery(
                event_batch(300, seed=3)["emb"][4], nprobe=8, refine=64
            ),
        ),
    ]
    with SearchExecutor(indexed_client, max_searchers=4) as executor:
        for column, query in queries:
            sequential = indexed_client.search(column, query, k=5)
            concurrent = executor.search(column, query, k=5)
            assert _shape(concurrent) == _shape(sequential), (column, query)
    # Sanity: the unindexed-key query really used the brute-force path.
    result = indexed_client.search("uuid", UuidQuery(event_uuid(3, 7)), k=5)
    assert result.stats.files_brute_forced > 0
    assert len(result.matches) == 1


def test_snapshot_and_partition_arguments(indexed_client):
    """Executor honors the same snapshot/partition plumbing."""
    old = indexed_client.lake.snapshot()
    indexed_client.lake.append(event_batch(300, seed=4))
    query = UuidQuery(event_uuid(4, 1))
    with SearchExecutor(indexed_client, max_searchers=2) as executor:
        assert executor.search("uuid", query, k=3, snapshot=old).matches == []
        fresh = executor.search("uuid", query, k=3)
        assert len(fresh.matches) == 1
        sequential = indexed_client.search("uuid", query, k=3)
        assert _shape(fresh) == _shape(sequential)


def test_wider_pool_never_slower(indexed_client):
    """Modeled latency is non-increasing in ``max_searchers``."""
    from repro.storage.latency import LatencyModel

    lat = LatencyModel()
    query = UuidQuery(event_uuid(1, 5))
    latencies = []
    for width in (1, 2, 4):
        with SearchExecutor(indexed_client, max_searchers=width) as executor:
            result = executor.search("uuid", query, k=5)
        latencies.append(result.stats.estimated_latency(lat))
    assert latencies[1] <= latencies[0] * 1.001
    assert latencies[2] <= latencies[1] * 1.001


def test_traces_are_per_thread(store):
    """Concurrent workers each record into their own RequestTrace; the
    caller's trace is untouched by other threads' requests."""
    import threading

    store.put("main", b"m")
    store.put("worker", b"w")
    store.start_trace()
    store.get("main")
    seen = {}

    def worker():
        store.start_trace()  # this thread's own trace
        store.get("worker")
        store.get("worker")
        seen["trace"] = store.stop_trace()

    t = threading.Thread(target=worker)
    t.start()
    t.join(timeout=5)
    main_trace = store.stop_trace()
    assert main_trace.total_requests == 1  # worker's GETs not mixed in
    assert seen["trace"].total_requests == 2
    # Cumulative IOStats counters still see every thread's requests.
    assert store.stats.gets == 3


def test_concurrent_iostats_increments_not_lost(store):
    """IOStats.record is lock-guarded: hammering from many threads
    loses no increments."""
    import threading

    store.put("k", b"v")
    n_threads, n_gets = 8, 50

    def hammer():
        for _ in range(n_gets):
            store.get("k")

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert store.stats.gets == n_threads * n_gets


def test_invalid_arguments(indexed_client):
    with pytest.raises(RottnestIndexError):
        SearchExecutor(indexed_client, max_searchers=0)
    with SearchExecutor(indexed_client) as executor:
        with pytest.raises(RottnestIndexError):
            executor.search("uuid", UuidQuery(b"\x00" * 16), k=0)

"""Workload generators: determinism and statistical shape."""

import zlib

import numpy as np
import pytest

from repro.workloads.text import TextWorkload
from repro.workloads.uuids import UuidWorkload, uuid_key
from repro.workloads.vectors import VectorWorkload


class TestTextWorkload:
    def test_deterministic_per_seed(self):
        a = TextWorkload(seed=1).documents(5, 200)
        b = TextWorkload(seed=1).documents(5, 200)
        assert a == b

    def test_different_seeds_differ(self):
        assert TextWorkload(seed=1).documents(3) != TextWorkload(seed=2).documents(3)

    def test_document_length_near_target(self):
        doc = TextWorkload(seed=0).document(500)
        assert 450 <= len(doc) <= 700

    def test_compresses_like_text(self):
        """Zipfian vocabulary should compress to ~25-45% like web text."""
        docs = TextWorkload(seed=0).documents(100, 400)
        blob = "\n".join(docs).encode()
        ratio = len(zlib.compress(blob)) / len(blob)
        assert 0.15 < ratio < 0.5

    def test_present_queries_hit(self):
        gen = TextWorkload(seed=3)
        docs = gen.documents(30, 200)
        for q in gen.present_queries(docs, 10):
            assert any(q in d for d in docs)

    def test_absent_queries_miss(self):
        gen = TextWorkload(seed=3)
        docs = gen.documents(30, 200)
        for q in gen.absent_queries(10):
            assert not any(q in d for d in docs)

    def test_no_nul_bytes(self):
        docs = TextWorkload(seed=5).documents(20, 100)
        assert all("\x00" not in d for d in docs)


class TestUuidWorkload:
    def test_unique_across_batches(self):
        gen = UuidWorkload(seed=0)
        keys = gen.batch(100) + gen.batch(100)
        assert len(set(keys)) == 200
        assert gen.total_generated == 200

    def test_deterministic(self):
        assert UuidWorkload(seed=1).batch(10) == UuidWorkload(seed=1).batch(10)

    def test_present_queries_are_generated_keys(self):
        gen = UuidWorkload(seed=0)
        keys = set(gen.batch(50))
        assert all(q in keys for q in gen.present_queries(20))

    def test_present_queries_require_data(self):
        with pytest.raises(ValueError):
            UuidWorkload().present_queries(1)

    def test_absent_queries_disjoint(self):
        gen = UuidWorkload(seed=0)
        keys = set(gen.batch(1000))
        assert all(q not in keys for q in gen.absent_queries(100))

    def test_key_width(self):
        gen = UuidWorkload(seed=0, nbytes=32)
        assert all(len(k) == 32 for k in gen.batch(5))
        assert len(uuid_key("x", 1, nbytes=8)) == 8


class TestVectorWorkload:
    def test_shape_and_dtype(self):
        gen = VectorWorkload(dim=24, n_clusters=4, seed=0)
        batch = gen.batch(50)
        assert batch.shape == (50, 24)
        assert batch.dtype == np.float32

    def test_clustered_structure(self):
        """Vectors sit near their centers: within-cluster distance much
        smaller than between-cluster distance."""
        gen = VectorWorkload(dim=16, n_clusters=4, cluster_scale=10.0,
                             noise_scale=0.5, seed=0)
        batch = gen.batch(400)
        from repro.indices.vector.kmeans import assign

        labels = assign(batch, gen.centers)
        residual = batch - gen.centers[labels]
        within = float(np.mean(np.sum(residual**2, axis=1)))
        spread = float(np.mean(np.sum((gen.centers - gen.centers.mean(0)) ** 2,
                                      axis=1)))
        assert within < spread / 10

    def test_queries_same_dim(self):
        gen = VectorWorkload(dim=8, seed=1)
        assert gen.queries(7).shape == (7, 8)

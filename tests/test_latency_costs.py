"""Latency model (calibrated to Fig. 10a) and cloud cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.costs import GB, CostModel
from repro.storage.latency import LatencyModel, single_request
from repro.storage.stats import Request, RequestTrace


@pytest.fixture
def model():
    return LatencyModel()


class TestRequestLatency:
    def test_flat_below_one_mb(self, model):
        """Fig. 10a: latency stable w.r.t. granularity until ~1 MB."""
        assert model.request_latency(1_000) == model.request_latency(300_000)
        assert model.request_latency(300_000) == model.request_latency(1 << 20)

    def test_linear_above_one_mb(self, model):
        one = model.request_latency(2 << 20)
        two = model.request_latency(4 << 20)
        # Doubling the excess bytes doubles the excess latency.
        excess_one = one - model.first_byte_s
        excess_two = two - model.first_byte_s
        assert excess_two == pytest.approx(2 * excess_one +
                                           (1 << 20) / model.stream_bandwidth_bps)

    def test_small_read_is_first_byte_bound(self, model):
        assert model.request_latency(100) == model.first_byte_s

    @given(st.integers(0, 1 << 30))
    def test_monotone_in_size(self, nbytes):
        m = LatencyModel()
        assert m.request_latency(nbytes) <= m.request_latency(nbytes + 1024)


class TestRoundLatency:
    def test_parallel_round_one_wave(self, model):
        sizes = [100_000] * 64
        assert model.round_latency(sizes) == model.request_latency(100_000)

    def test_waves_beyond_concurrency(self):
        # Generous RPS limit so wave count is the binding constraint.
        m = LatencyModel(prefix_get_rps=1e9)
        sizes = [1000] * (m.max_concurrency * 3)
        assert m.round_latency(sizes) == pytest.approx(3 * m.first_byte_s)

    def test_empty_round_free(self, model):
        assert model.round_latency([]) == 0.0

    def test_bandwidth_floor(self, model):
        # 512 x 100 MB cannot finish in first-byte time on one NIC.
        sizes = [100 << 20] * 512
        assert model.round_latency(sizes) >= sum(sizes) / model.instance_bandwidth_bps

    def test_rps_floor(self):
        m = LatencyModel(prefix_get_rps=100.0, max_concurrency=10_000)
        sizes = [10] * 5_000
        assert m.round_latency(sizes) >= 50.0

    def test_custom_concurrency(self, model):
        sizes = [1000] * 10
        serial = model.round_latency(sizes, concurrency=1)
        parallel = model.round_latency(sizes, concurrency=10)
        assert serial == pytest.approx(10 * parallel, rel=0.01)


class TestTraceLatency:
    def test_depth_dominates(self, model):
        trace = RequestTrace()
        for _ in range(5):
            trace.record(Request("GET", "k", 1000))
            trace.barrier()
        assert model.trace_latency(trace) == pytest.approx(5 * model.first_byte_s)

    def test_width_is_cheap(self, model):
        wide = RequestTrace()
        for _ in range(100):
            wide.record(Request("GET", "k", 1000))
        deep = RequestTrace()
        for _ in range(10):
            deep.record(Request("GET", "k", 1000))
            deep.barrier()
        assert model.trace_latency(wide) < model.trace_latency(deep)

    def test_list_adds_latency(self, model):
        trace = RequestTrace()
        trace.record(Request("LIST", "p/", 0))
        trace.record(Request("GET", "k", 10))
        assert model.trace_latency(trace) == pytest.approx(
            model.list_latency_s + model.first_byte_s
        )

    def test_single_request_helper(self, model):
        trace = single_request("GET", "k", 500)
        assert model.trace_latency(trace) == model.first_byte_s


class TestScanLatency:
    def test_scales_with_workers(self, model):
        one = model.scan_latency(100 * GB, workers=1)
        ten = model.scan_latency(100 * GB, workers=10)
        assert one > 9 * (ten - model.first_byte_s)

    def test_zero_bytes(self, model):
        assert model.scan_latency(0) == 0.0


class TestCostModel:
    def test_storage_monthly(self):
        c = CostModel()
        assert c.storage_monthly(GB) == pytest.approx(0.023)

    def test_ebs_replicated(self):
        c = CostModel()
        assert c.ebs_monthly(GB, replicas=3) == pytest.approx(0.24)

    def test_compute_cost(self):
        c = CostModel()
        assert c.compute_cost("r6i.4xlarge", 3600, count=2) == pytest.approx(2.016)

    def test_unknown_instance(self):
        with pytest.raises(KeyError):
            CostModel().instance_hourly("z1.mega")

    def test_request_cost(self):
        c = CostModel()
        cost = c.request_cost(gets=1000, puts=1000, lists=1000)
        assert cost == pytest.approx(0.0004 + 0.005 + 0.005)

    def test_request_cost_defaults_zero(self):
        assert CostModel().request_cost() == 0.0

"""`repro metrics`, `repro top`, `repro traces`, `serve-bench --flight`.

The live-ops loop the runbook describes — slo-check, then top, then
traces — plus the Prometheus dump. Exit codes follow the repo-wide
convention: 0 ok, 3 on empty input, 1 on :class:`ReproError`.

`repro metrics` dumps the *process-global* registry, which a pytest
process has long since populated, so its empty-input leg must run in a
fresh interpreter.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.cli import main

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _run_cli(argv, cwd=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
    )


@pytest.fixture
def flight_bucket(tmp_path, capsys):
    """An indexed lake served once with the flight recorder on."""
    bucket = str(tmp_path / "bucket")
    assert main([
        "create-table", "--root", bucket, "--table", "lake/logs",
        "--schema", "request_id:binary",
        "--row-group-rows", "100", "--page-target-bytes", "1024",
    ]) == 0
    keys = [hashlib.sha256(f"k-{i}".encode()).digest()[:16] for i in range(200)]
    jsonl = tmp_path / "rows.jsonl"
    with open(jsonl, "w") as f:
        for key in keys:
            f.write(json.dumps({"request_id": key.hex()}) + "\n")
    assert main([
        "append", "--root", bucket, "--table", "lake/logs",
        "--jsonl", str(jsonl),
    ]) == 0
    assert main([
        "index", "--root", bucket, "--table", "lake/logs",
        "--index-dir", "idx/logs", "--column", "request_id",
        "--type", "uuid_trie",
    ]) == 0
    telemetry = str(tmp_path / "TELEMETRY_serve.json")
    assert main([
        "serve-bench", "--root", bucket, "--table", "lake/logs",
        "--index-dir", "idx/logs", "--column", "request_id",
        "--uuid", keys[3].hex(), "--repeat", "3", "--clients", "2",
        "--telemetry", telemetry, "--flight",
        # An impossibly tight p99 objective: every query breaches, so
        # the recorder retains traces for `top`/`traces` to surface.
        "--latency-p99-s", "1e-6",
    ]) == 0
    err = capsys.readouterr().err
    assert "flight recorder:" in err
    return bucket, telemetry


class TestMetricsCommand:
    def test_empty_registry_exits_three(self):
        # Fresh interpreter: no subsystem has recorded a sample yet.
        proc = _run_cli(["metrics"])
        assert proc.returncode == 3
        assert "empty input" in proc.stderr

    def test_dumps_prometheus_text_after_opening_lake(self, flight_bucket):
        bucket, _ = flight_bucket
        proc = _run_cli([
            "metrics", "--root", bucket, "--table", "lake/logs",
            "--index-dir", "idx/logs",
        ])
        assert proc.returncode == 0
        assert "# HELP" in proc.stdout
        assert "# TYPE store_requests_total counter" in proc.stdout


class TestTopCommand:
    def test_empty_store_exits_three(self, tmp_path, capsys):
        empty = tmp_path / "empty-bucket"
        empty.mkdir()
        assert main(["top", "--root", str(empty)]) == 3
        assert "empty input" in capsys.readouterr().err

    def test_renders_burn_rates_and_slowest_traces(
        self, flight_bucket, capsys
    ):
        bucket, _ = flight_bucket
        assert main(["top", "--root", bucket]) == 0
        out = capsys.readouterr().out
        assert "== burn rates ==" in out
        assert "== counters ==" in out
        assert "slowest retained traces" in out

    def test_telemetry_file_alone_suffices(self, flight_bucket, capsys):
        _, telemetry = flight_bucket
        assert main(["top", "--telemetry", telemetry]) == 0
        assert "queries" in capsys.readouterr().out


class TestTracesCommand:
    def test_unknown_trace_id_is_repro_error(self, flight_bucket, capsys):
        bucket, _ = flight_bucket
        assert main(["traces", "ffffffffffffffff", "--root", bucket]) == 1
        assert "error:" in capsys.readouterr().err


class TestServeBenchFlight:
    def test_commits_snapshot_into_the_plane(self, flight_bucket):
        bucket, _ = flight_bucket
        snaps = os.listdir(os.path.join(bucket, "obs", "_snapshots"))
        assert len([k for k in snaps if k.endswith(".json")]) == 1

    def test_dashboard_root_gains_cross_run_panel(
        self, flight_bucket, tmp_path, capsys
    ):
        bucket, telemetry = flight_bucket
        out_path = str(tmp_path / "dash.html")
        assert main([
            "dashboard", "--telemetry", telemetry, "--root", bucket,
            "--out", out_path,
        ]) == 0
        with open(out_path) as f:
            doc = f.read()
        assert "Cross-run" in doc

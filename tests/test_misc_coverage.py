"""Remaining small-surface coverage: log ranges, rendering, traces."""

import pytest

from repro.errors import SnapshotNotFound
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.actions import AddFile, SetSchema
from repro.lake.log import TransactionLog
from repro.lake.snapshot import Snapshot, replay
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.stats import Request, RequestTrace
from repro.tco.model import copy_data_cost
from repro.tco.phase import compute_phase_diagram
from repro.tco.render import render

SIMPLE = Schema.of(Field("x", ColumnType.INT64))


class TestLogRanges:
    @pytest.fixture
    def log(self):
        store = InMemoryObjectStore()
        log = TransactionLog(store, "lake/t")
        log.try_commit(0, [SetSchema(schema=SIMPLE)])
        for i in range(1, 5):
            log.try_commit(i, [AddFile(path=f"f{i}", num_rows=1, size=1)])
        return log

    def test_read_range(self, log):
        tail = log.read_range(2, 4)
        assert len(tail) == 3
        assert tail[0][0].path == "f2"

    def test_read_range_past_latest(self, log):
        with pytest.raises(SnapshotNotFound):
            log.read_range(2, 9)

    def test_empty_range(self, log):
        assert log.read_range(3, 2) == []

    def test_checkpoint_roundtrip(self, log):
        snap = replay(4, log.read_all())
        assert log.write_checkpoint(snap)
        assert not log.write_checkpoint(snap)  # idempotent loser
        assert log.latest_checkpoint_version(4) == 4
        assert log.latest_checkpoint_version(3) == -1
        assert log.read_checkpoint(4) == snap


class TestReplayWithBase:
    def test_base_plus_tail(self):
        full_log = [
            [SetSchema(schema=SIMPLE)],
            [AddFile(path="a", num_rows=1, size=1)],
            [AddFile(path="b", num_rows=2, size=2)],
        ]
        base = replay(1, full_log[:2])
        via_base = replay(2, full_log[2:], base=base)
        direct = replay(2, full_log)
        assert via_base == direct


class TestTraceAlgebra:
    def test_then_flattens_empty_rounds(self):
        a = RequestTrace()
        a.record(Request("GET", "x", 1))
        a.barrier()
        b = RequestTrace()
        combined = a.then(b)
        assert combined.depth == 1
        assert combined.total_requests == 1

    def test_then_orders_rounds(self):
        a = RequestTrace()
        a.record(Request("GET", "first", 1))
        b = RequestTrace()
        b.record(Request("GET", "second", 2))
        combined = a.then(b)
        assert [r[0].key for r in combined.rounds] == ["first", "second"]
        assert combined.depth == 2

    def test_then_both_empty(self):
        combined = RequestTrace().then(RequestTrace())
        assert combined.depth == 0


class TestRenderGeometry:
    def test_dimensions(self):
        a = copy_data_cost("a", monthly=1.0)
        b = copy_data_cost("b", monthly=2.0)
        d = compute_phase_diagram([a, b], resolution=32)
        art = render(d, width=20, height=8)
        lines = art.splitlines()
        assert len(lines) == 8 + 3  # rows + footer + axis + legend
        assert all("|" in line for line in lines[:8])

    def test_deterministic(self):
        a = copy_data_cost("a", monthly=1.0)
        b = copy_data_cost("b", monthly=2.0)
        d = compute_phase_diagram([a, b])
        assert render(d) == render(d)


class TestSnapshotHelpers:
    def test_contains_and_paths(self):
        snap = replay(
            1,
            [
                [SetSchema(schema=SIMPLE)],
                [AddFile(path="p", num_rows=3, size=30)],
            ],
        )
        assert snap.contains("p")
        assert not snap.contains("q")
        assert snap.file_paths == ["p"]
        assert Snapshot.from_json(snap.to_json()) == snap

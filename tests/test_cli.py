"""CLI: end-to-end operation of a disk-backed lake via `python -m repro`."""

import hashlib
import json

import pytest

from repro.cli import main, parse_schema
from repro.errors import ReproError
from repro.formats.schema import ColumnType


@pytest.fixture
def bucket(tmp_path):
    return str(tmp_path / "bucket")


def run(capsys, *argv) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestParseSchema:
    def test_basic(self):
        schema = parse_schema("ts:int64,body:string,emb:vector:8")
        assert schema.names == ["ts", "body", "emb"]
        assert schema.field("emb").vector_dim == 8
        assert schema.field("ts").type is ColumnType.INT64

    def test_bad_type(self):
        with pytest.raises(ReproError):
            parse_schema("x:floaty")

    def test_bad_shape(self):
        with pytest.raises(ReproError):
            parse_schema("justname")


class TestCliLifecycle:
    def _create(self, capsys, bucket):
        code, out = run(
            capsys,
            "create-table",
            "--root", bucket,
            "--table", "lake/logs",
            "--schema", "request_id:binary,message:string",
            "--row-group-rows", "100",
            "--page-target-bytes", "1024",
        )
        assert code == 0
        assert "created table" in out

    def _append(self, capsys, bucket, tmp_path, n=250, seed=1):
        rows = []
        for i in range(n):
            key = hashlib.sha256(f"{seed}-{i}".encode()).digest()[:16]
            rows.append(
                json.dumps(
                    {"request_id": key.hex(), "message": f"event {seed}-{i}"}
                )
            )
        jsonl = tmp_path / f"batch{seed}.jsonl"
        jsonl.write_text("\n".join(rows))
        code, out = run(
            capsys,
            "append",
            "--root", bucket,
            "--table", "lake/logs",
            "--jsonl", str(jsonl),
        )
        assert code == 0
        assert f"appended {n} rows" in out

    def test_full_lifecycle(self, capsys, bucket, tmp_path):
        self._create(capsys, bucket)
        self._append(capsys, bucket, tmp_path, seed=1)
        self._append(capsys, bucket, tmp_path, seed=2)

        code, out = run(
            capsys,
            "index",
            "--root", bucket,
            "--table", "lake/logs",
            "--index-dir", "idx/logs",
            "--column", "request_id",
            "--type", "uuid_trie",
        )
        assert code == 0
        assert "indexed 500 rows" in out

        target = hashlib.sha256(b"1-42").digest()[:16]
        code, out = run(
            capsys,
            "search",
            "--root", bucket,
            "--table", "lake/logs",
            "--index-dir", "idx/logs",
            "--column", "request_id",
            "--uuid", target.hex(),
            "-k", "5",
        )
        assert code == 0
        hits = [json.loads(line) for line in out.splitlines() if line]
        assert len(hits) == 1
        assert hits[0]["value"] == target.hex()

        code, out = run(
            capsys,
            "search",
            "--root", bucket,
            "--table", "lake/logs",
            "--index-dir", "idx/logs",
            "--column", "message",
            "--substring", "event 2-7",
            "-k", "100",
        )
        assert code == 0
        # "event 2-7", "event 2-70".."2-79": brute-forced (no fm index),
        # still correct.
        assert len(out.splitlines()) == 11

        code, out = run(
            capsys,
            "info",
            "--root", bucket,
            "--table", "lake/logs",
            "--index-dir", "idx/logs",
        )
        assert code == 0
        assert "rows:      500" in out
        assert "uuid_trie" in out

    def test_compact_and_vacuum(self, capsys, bucket, tmp_path):
        self._create(capsys, bucket)
        for seed in (1, 2):
            self._append(capsys, bucket, tmp_path, seed=seed)
            code, _ = run(
                capsys,
                "index",
                "--root", bucket,
                "--table", "lake/logs",
                "--index-dir", "idx/logs",
                "--column", "request_id",
                "--type", "uuid_trie",
            )
            assert code == 0
        code, out = run(
            capsys,
            "compact",
            "--root", bucket,
            "--table", "lake/logs",
            "--index-dir", "idx/logs",
            "--column", "request_id",
            "--type", "uuid_trie",
        )
        assert code == 0
        assert "compacted into 1" in out
        code, out = run(
            capsys,
            "vacuum",
            "--root", bucket,
            "--table", "lake/logs",
            "--index-dir", "idx/logs",
        )
        assert code == 0
        assert "deleted 2 record(s)" in out

    def test_index_with_params(self, capsys, bucket, tmp_path):
        self._create(capsys, bucket)
        self._append(capsys, bucket, tmp_path)
        code, out = run(
            capsys,
            "index",
            "--root", bucket,
            "--table", "lake/logs",
            "--index-dir", "idx/logs",
            "--column", "message",
            "--type", "fm",
            "--param", "block_size=2048",
            "--param", "store_pagemap=false",
        )
        assert code == 0
        assert "indexed" in out

    def test_search_requires_one_query(self, capsys, bucket, tmp_path):
        self._create(capsys, bucket)
        self._append(capsys, bucket, tmp_path, n=10)
        code, _ = run(
            capsys,
            "search",
            "--root", bucket,
            "--table", "lake/logs",
            "--index-dir", "idx/logs",
            "--column", "message",
        )
        assert code == 1

    def test_append_rejects_missing_column(self, capsys, bucket, tmp_path):
        self._create(capsys, bucket)
        jsonl = tmp_path / "bad.jsonl"
        jsonl.write_text(json.dumps({"request_id": "00ff"}))
        code, _ = run(
            capsys,
            "append",
            "--root", bucket,
            "--table", "lake/logs",
            "--jsonl", str(jsonl),
        )
        assert code == 1

    def test_range_query(self, capsys, bucket, tmp_path):
        code, _ = run(
            capsys, "create-table", "--root", bucket, "--table", "lake/ts",
            "--schema", "ts:int64", "--row-group-rows", "128",
        )
        assert code == 0
        jsonl = tmp_path / "ts.jsonl"
        jsonl.write_text("\n".join(json.dumps({"ts": i}) for i in range(400)))
        code, _ = run(
            capsys, "append", "--root", bucket, "--table", "lake/ts",
            "--jsonl", str(jsonl),
        )
        assert code == 0
        code, _ = run(
            capsys, "index", "--root", bucket, "--table", "lake/ts",
            "--index-dir", "idx/ts", "--column", "ts", "--type", "minmax",
        )
        assert code == 0
        code, out = run(
            capsys, "search", "--root", bucket, "--table", "lake/ts",
            "--index-dir", "idx/ts", "--column", "ts",
            "--range", "100", "104", "-k", "100",
        )
        assert code == 0
        values = sorted(json.loads(l)["value"] for l in out.splitlines())
        assert values == [100, 101, 102, 103, 104]

    def test_vector_roundtrip(self, capsys, bucket, tmp_path):
        code, _ = run(
            capsys,
            "create-table",
            "--root", bucket,
            "--table", "lake/vec",
            "--schema", "emb:vector:4",
            "--row-group-rows", "512",
        )
        assert code == 0
        rows = [
            json.dumps({"emb": [float(i), 0.0, 0.0, 0.0]}) for i in range(300)
        ]
        jsonl = tmp_path / "vec.jsonl"
        jsonl.write_text("\n".join(rows))
        code, _ = run(
            capsys, "append", "--root", bucket, "--table", "lake/vec",
            "--jsonl", str(jsonl),
        )
        assert code == 0
        code, _ = run(
            capsys, "index", "--root", bucket, "--table", "lake/vec",
            "--index-dir", "idx/vec", "--column", "emb", "--type", "ivf_pq",
            "--param", "nlist=8", "--param", "m=2",
        )
        assert code == 0
        code, out = run(
            capsys, "search", "--root", bucket, "--table", "lake/vec",
            "--index-dir", "idx/vec", "--column", "emb",
            "--vector", "[7.1, 0.0, 0.0, 0.0]", "-k", "1",
        )
        assert code == 0
        hit = json.loads(out.splitlines()[0])
        assert hit["value"][0] == pytest.approx(7.0)


class TestMaintainBench:
    def test_wide_run_clears_the_gate(self, capsys):
        code, out = run(
            capsys, "maintain-bench",
            "--files", "32", "--rows", "24", "--workers", "4",
        )
        assert code == 0
        assert "speedup" in out and "merge phase" in out

    def test_narrow_run_fails_the_gate(self, capsys):
        # 8 files cannot amortize the serial plan+commit to 2x.
        code, out = run(
            capsys, "maintain-bench",
            "--files", "8", "--rows", "24", "--workers", "4",
        )
        assert code == 2
        assert "workers=1" in out  # width 1 is always included

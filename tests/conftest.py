"""Shared fixtures: stores, lakes, and small indexed datasets."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.client import RottnestClient
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.text import TextWorkload
from repro.workloads.uuids import UuidWorkload
from repro.workloads.vectors import VectorWorkload


@pytest.fixture
def clock() -> SimClock:
    return SimClock(start=1_000_000.0)


@pytest.fixture
def store(clock) -> InMemoryObjectStore:
    return InMemoryObjectStore(clock=clock)


@pytest.fixture
def small_config() -> TableConfig:
    """Tiny pages/row-groups so tests exercise multi-page layouts."""
    return TableConfig(row_group_rows=200, page_target_bytes=2048)


EVENT_SCHEMA = Schema.of(
    Field("uuid", ColumnType.BINARY),
    Field("text", ColumnType.STRING),
    Field("emb", ColumnType.VECTOR, vector_dim=16),
)


def event_batch(n: int, seed: int) -> dict:
    """Deterministic batch for the three-column event table."""
    text_gen = TextWorkload(seed=seed, vocabulary_size=300)
    rng = np.random.default_rng(seed)
    return {
        "uuid": [
            hashlib.sha256(f"{seed}-{i}".encode()).digest()[:16] for i in range(n)
        ],
        "text": text_gen.documents(n, avg_chars=60),
        "emb": rng.normal(size=(n, 16)).astype(np.float32),
    }


def event_uuid(seed: int, i: int) -> bytes:
    return hashlib.sha256(f"{seed}-{i}".encode()).digest()[:16]


@pytest.fixture
def event_lake(store, small_config) -> LakeTable:
    """A lake with two appended files of 300 rows each."""
    lake = LakeTable.create(store, "lake/events", EVENT_SCHEMA, small_config)
    lake.append(event_batch(300, seed=1))
    lake.append(event_batch(300, seed=2))
    return lake


@pytest.fixture
def client(store, event_lake) -> RottnestClient:
    return RottnestClient(store, "idx/events", event_lake)


@pytest.fixture
def indexed_client(client) -> RottnestClient:
    """Client with all three index types built on the event lake."""
    client.index("uuid", "uuid_trie")
    client.index("text", "fm", params={"block_size": 4096, "sample_rate": 16})
    client.index("emb", "ivf_pq", params={"nlist": 8, "m": 8})
    return client


@pytest.fixture
def text_workload() -> TextWorkload:
    return TextWorkload(seed=7, vocabulary_size=500)


@pytest.fixture
def uuid_workload() -> UuidWorkload:
    return UuidWorkload(seed=7)


@pytest.fixture
def vector_workload() -> VectorWorkload:
    return VectorWorkload(dim=16, n_clusters=8, seed=7)

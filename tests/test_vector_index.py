"""k-means, product quantization, and IVF-PQ (§V-C3)."""

import numpy as np
import pytest

from repro.errors import RottnestIndexError
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.formats.page_reader import PageEntry, PageTable
from repro.indices.vector.ivf_pq import IvfPqBuilder, IvfPqQuerier
from repro.indices.vector.kmeans import assign, kmeans, squared_distances
from repro.indices.vector.pq import ProductQuantizer
from repro.workloads.vectors import VectorWorkload, exact_knn, recall_at_k


@pytest.fixture
def clustered():
    gen = VectorWorkload(dim=16, n_clusters=10, seed=5)
    return gen.batch(3000)


class TestKmeans:
    def test_squared_distances(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]], dtype=np.float32)
        b = np.array([[0.0, 0.0]], dtype=np.float32)
        d = squared_distances(a, b)
        assert d[0, 0] == pytest.approx(0.0)
        assert d[1, 0] == pytest.approx(25.0)

    def test_assign_nearest(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]], dtype=np.float32)
        points = np.array([[1.0, 1.0], [9.0, 9.0]], dtype=np.float32)
        assert assign(points, centers).tolist() == [0, 1]

    def test_kmeans_separates_clear_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=0.0, scale=0.1, size=(100, 4))
        b = rng.normal(loc=10.0, scale=0.1, size=(100, 4))
        points = np.vstack([a, b]).astype(np.float32)
        centers, labels = kmeans(points, 2, seed=1)
        assert len(set(labels[:100].tolist())) == 1
        assert len(set(labels[100:].tolist())) == 1
        assert labels[0] != labels[150]

    def test_k_clamped_to_n(self):
        points = np.zeros((3, 2), dtype=np.float32)
        centers, labels = kmeans(points, 10)
        assert len(centers) == 3

    def test_degenerate_identical_points(self):
        points = np.ones((50, 4), dtype=np.float32)
        centers, labels = kmeans(points, 4, seed=0)
        assert np.allclose(centers, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 3), dtype=np.float32), 2)

    def test_deterministic_per_seed(self, clustered):
        c1, _ = kmeans(clustered, 8, seed=3)
        c2, _ = kmeans(clustered, 8, seed=3)
        assert np.array_equal(c1, c2)


class TestProductQuantizer:
    def test_dim_divisibility(self, clustered):
        with pytest.raises(RottnestIndexError):
            ProductQuantizer.train(clustered, m=5)  # 16 % 5 != 0

    def test_encode_decode_error_bounded(self, clustered):
        pq = ProductQuantizer.train(clustered, m=8, seed=0)
        codes = pq.encode(clustered[:200])
        decoded = pq.decode(codes)
        err = np.mean(np.sum((decoded - clustered[:200]) ** 2, axis=1))
        baseline = np.mean(np.sum((clustered[:200] - clustered[:200].mean(0)) ** 2, axis=1))
        assert err < baseline * 0.5  # quantization beats mean predictor

    def test_codes_shape_dtype(self, clustered):
        pq = ProductQuantizer.train(clustered, m=4)
        codes = pq.encode(clustered[:10])
        assert codes.shape == (10, 4)
        assert codes.dtype == np.uint8

    def test_adc_ranks_like_exact(self, clustered):
        pq = ProductQuantizer.train(clustered, m=8, seed=0)
        codes = pq.encode(clustered)
        query = clustered[0]
        table = pq.adc_table(query)
        approx = ProductQuantizer.adc_distances(codes, table)
        exact = np.sum((clustered - query) ** 2, axis=1)
        approx_top = set(np.argsort(approx)[:50].tolist())
        exact_top = set(np.argsort(exact)[:10].tolist())
        assert len(approx_top & exact_top) >= 7

    def test_serialize_roundtrip(self, clustered):
        pq = ProductQuantizer.train(clustered, m=4, seed=0)
        back = ProductQuantizer.deserialize(pq.serialize())
        assert np.array_equal(back.codebooks, pq.codebooks)

    def test_query_dim_checked(self, clustered):
        pq = ProductQuantizer.train(clustered, m=4)
        with pytest.raises(RottnestIndexError):
            pq.adc_table(np.zeros(7, dtype=np.float32))
        with pytest.raises(RottnestIndexError):
            pq.encode(np.zeros((2, 7), dtype=np.float32))

    def test_small_training_set(self):
        tiny = np.random.default_rng(0).normal(size=(20, 8)).astype(np.float32)
        pq = ProductQuantizer.train(tiny, m=2)
        codes = pq.encode(tiny)
        assert codes.max() < 20  # only trained entries emitted


def store_ivf(builder, n_pages, rows_per_page):
    table = PageTable(
        "v.parquet",
        "emb",
        [
            PageEntry("v.parquet", i, 4 + i * 100, 100, rows_per_page,
                      i * rows_per_page, 1)
            for i in range(n_pages)
        ],
    )
    w = IndexFileWriter("ivf_pq", "emb", PageDirectory([table]))
    builder.write(w)
    store_ = __import__("repro.storage", fromlist=["InMemoryObjectStore"])
    store = store_.InMemoryObjectStore()
    store.put("v.index", w.finish())
    return store, IvfPqQuerier(IndexFileReader.open(store, "v.index"))


class TestIvfPq:
    ROWS_PER_PAGE = 250

    @pytest.fixture
    def index(self, clustered):
        pages = [
            (gid, clustered[gid * self.ROWS_PER_PAGE : (gid + 1) * self.ROWS_PER_PAGE])
            for gid in range(len(clustered) // self.ROWS_PER_PAGE)
        ]
        builder = IvfPqBuilder.build(pages, nlist=24, m=8, seed=0)
        store, querier = store_ivf(builder, len(pages), self.ROWS_PER_PAGE)
        return builder, store, querier

    def test_candidate_recall(self, index, clustered):
        _, _, querier = index
        rng = np.random.default_rng(1)
        hits = total = 0
        for _ in range(25):
            query = clustered[rng.integers(len(clustered))]
            true_top = exact_knn(clustered, query, 10)
            cands = querier.candidates(query, nprobe=8, limit=120)
            cand_rows = {c.gid * self.ROWS_PER_PAGE + c.offset for c in cands}
            hits += len(set(true_top.tolist()) & cand_rows)
            total += 10
        assert hits / total > 0.8

    def test_nprobe_increases_recall(self, index, clustered):
        _, _, querier = index
        rng = np.random.default_rng(2)
        queries = [clustered[rng.integers(len(clustered))] for _ in range(20)]

        def recall(nprobe):
            hits = 0
            for q in queries:
                true_top = exact_knn(clustered, q, 10)
                cands = querier.candidates(q, nprobe=nprobe, limit=200)
                rows = {c.gid * self.ROWS_PER_PAGE + c.offset for c in cands}
                hits += len(set(true_top.tolist()) & rows)
            return hits / (10 * len(queries))

        assert recall(12) >= recall(1)

    def test_candidates_sorted_by_score(self, index, clustered):
        _, _, querier = index
        cands = querier.candidates(clustered[0], nprobe=4, limit=50)
        scores = [c.score for c in cands]
        assert scores == sorted(scores)

    def test_limit_respected(self, index, clustered):
        _, _, querier = index
        assert len(querier.candidates(clustered[0], nprobe=24, limit=7)) == 7

    def test_query_dim_checked(self, index):
        _, _, querier = index
        with pytest.raises(RottnestIndexError):
            querier.candidates(np.zeros(3, dtype=np.float32))

    def test_load_roundtrip(self, index):
        builder, store, querier = index
        loaded = IvfPqBuilder.load(querier.reader)
        assert np.array_equal(loaded.centroids, builder.centroids)
        assert len(loaded.lists) == len(builder.lists)
        for (g1, o1, c1), (g2, o2, c2) in zip(loaded.lists, builder.lists):
            assert np.array_equal(g1, g2)
            assert np.array_equal(o1, o2)
            assert np.array_equal(c1, c2)

    def test_merge_preserves_recall(self, clustered):
        half = len(clustered) // 2
        rpp = self.ROWS_PER_PAGE
        pages1 = [(g, clustered[g * rpp : (g + 1) * rpp]) for g in range(half // rpp)]
        pages2 = [
            (g, clustered[half + g * rpp : half + (g + 1) * rpp])
            for g in range(half // rpp)
        ]
        b1 = IvfPqBuilder.build(pages1, nlist=16, m=8, seed=0)
        b2 = IvfPqBuilder.build(pages2, nlist=16, m=8, seed=0)
        merged = IvfPqBuilder.merge([b1, b2], [0, half // rpp])
        store, querier = store_ivf(merged, len(clustered) // rpp, rpp)
        rng = np.random.default_rng(3)
        hits = total = 0
        for _ in range(20):
            query = clustered[rng.integers(len(clustered))]
            true_top = exact_knn(clustered, query, 10)
            cands = querier.candidates(query, nprobe=10, limit=150)
            rows = {c.gid * rpp + c.offset for c in cands}
            hits += len(set(true_top.tolist()) & rows)
            total += 10
        assert hits / total > 0.7

    def test_min_rows_guard(self):
        assert IvfPqBuilder.min_rows == 256

    def test_two_round_access_pattern(self, index):
        _, store, _ = index
        querier = IvfPqQuerier(IndexFileReader.open(store, "v.index"))
        query = np.zeros(16, dtype=np.float32)
        store.start_trace()
        querier.candidates(query, nprobe=4, limit=10)
        trace = store.stop_trace()
        # centroids (possibly tail-cached) then one parallel list round.
        assert trace.depth <= 2

    def test_non_vector_page_rejected(self):
        with pytest.raises(RottnestIndexError):
            IvfPqBuilder.build([(0, ["not", "vectors"])])

    def test_empty_build_rejected(self):
        with pytest.raises(RottnestIndexError):
            IvfPqBuilder.build([])


class TestWorkloadHelpers:
    def test_exact_knn_self_first(self, clustered):
        idx = exact_knn(clustered, clustered[42], 5)
        assert idx[0] == 42

    def test_exact_knn_k_exceeds_n(self):
        x = np.zeros((3, 2), dtype=np.float32)
        assert len(exact_knn(x, x[0], 10)) == 3

    def test_recall_at_k(self):
        assert recall_at_k([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)
        assert recall_at_k([], []) == 1.0

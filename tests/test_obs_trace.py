"""Tracer: span trees, events, clocks, and cross-thread propagation."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.queries import UuidQuery
from repro.obs.trace import Tracer, get_tracer, set_tracer, use_tracer
from repro.serve.executor import SearchExecutor
from repro.util.clock import SimClock
from tests.conftest import event_uuid


class TestSpanTree:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in a.children] == ["a1"]
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]
        assert root.find("a1").parent_id == a.span_id
        assert root.parent_id is None

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("q", column="text", k=5) as span:
            span.set("matches", 3)
        assert span.attributes == {"column": "text", "k": 5, "matches": 3}

    def test_find_all(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for _ in range(3):
                with tracer.span("probe"):
                    pass
        assert len(root.find_all("probe")) == 3
        assert root.find("missing") is None

    def test_events_land_on_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.record_event("GET", "k1", 10)
            with tracer.span("inner") as inner:
                tracer.record_event("GET", "k2", 20)
        assert [e.key for e in outer.events] == ["k1"]
        assert [e.key for e in inner.events] == ["k2"]
        assert outer.total_requests == 2
        assert outer.total_bytes == 30

    def test_event_without_active_span_is_dropped(self):
        tracer = Tracer()
        tracer.record_event("GET", "k", 1)  # must not raise
        assert tracer.pop_finished() == []

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("x")
        assert span.end_s is not None
        assert tracer.current() is None
        assert tracer.last_root("boom") is span


class TestClockAndLifecycle:
    def test_simclock_durations(self):
        clock = SimClock(start=100.0)
        tracer = Tracer(clock=clock)
        with tracer.span("work") as span:
            clock.advance(2.5)
        assert span.duration_s == pytest.approx(2.5)
        assert span.start_s == pytest.approx(100.0)

    def test_wall_clock_durations_monotonic(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.duration_s >= 0.0

    def test_finished_ring_and_pop(self):
        tracer = Tracer(keep_finished=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        roots = tracer.pop_finished()
        assert [s.name for s in roots] == ["b", "c"]  # oldest dropped
        assert tracer.pop_finished() == []

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            span.set("k", "v")  # no-op on the null span
            tracer.record_event("GET", "k", 1)
        assert tracer.pop_finished() == []

    def test_use_tracer_scopes_the_global(self):
        original = get_tracer()
        scoped = Tracer()
        with use_tracer(scoped) as active:
            assert active is scoped
            assert get_tracer() is scoped
        assert get_tracer() is original

    def test_set_tracer_returns_previous(self):
        original = get_tracer()
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert previous is original
            assert get_tracer() is mine
        finally:
            set_tracer(original)


class TestCrossThreadPropagation:
    def test_attach_parents_worker_spans(self):
        tracer = Tracer()
        with tracer.span("query") as query_span:
            parent = tracer.current()

            def worker(i: int) -> str:
                with tracer.attach(parent):
                    with tracer.span(f"task-{i}"):
                        tracer.record_event("GET", f"key-{i}", i)
                return threading.current_thread().name

            with ThreadPoolExecutor(max_workers=4) as pool:
                names = list(pool.map(worker, range(8)))
        children = {c.name for c in query_span.children}
        assert children == {f"task-{i}" for i in range(8)}
        for child in query_span.children:
            assert child.parent is query_span
            # Each task recorded its own event on its own span.
            i = int(child.name.split("-")[1])
            assert [e.key for e in child.events] == [f"key-{i}"]
            assert child.thread in names

    def test_attach_none_is_noop(self):
        tracer = Tracer()
        with tracer.attach(None):
            assert tracer.current() is None

    def test_executor_search_spans_cross_threads(self, indexed_client):
        """Satellite: spans from SearchExecutor worker threads parent
        under the right query span with per-thread request traces."""
        tracer = Tracer(clock=indexed_client.store.clock)
        key = event_uuid(1, 7)
        with use_tracer(tracer):
            with SearchExecutor(indexed_client, max_searchers=3) as executor:
                result = executor.search("uuid", UuidQuery(key), k=3)
        assert result.matches
        root = tracer.last_root("search")
        assert root is not None
        assert root.attributes["engine"] == "executor"
        assert root.attributes["searchers"] == 3

        # Phase spans are direct children, on the submitting thread.
        # The exact path runs probe -> claim -> coalesced page reads as
        # one pipelined continuation per index record ("probe").
        phase_names = [c.name for c in root.children]
        assert phase_names[0] == "plan"
        assert "probe" in phase_names

        # Worker task spans hang under phase spans, not the root, and
        # each ran on a searcher pool thread with its own trace.
        tasks = root.find_all("searcher:task")
        assert tasks
        for task in tasks:
            assert task.parent.name in {
                "probe", "probe:index", "probe:pages", "brute_force",
            }
            assert task.thread.startswith("searcher")
            assert task.trace is not None
            assert task.trace.total_requests == len(task.events)
            assert task.attributes["requests"] == task.trace.total_requests

        # Every store request of every phase is attributable: the phase
        # trace's request count equals the events its subtree recorded.
        for phase in root.children:
            if phase.trace is None:
                continue
            assert phase.total_requests == phase.trace.total_requests

    def test_concurrent_roots_stay_separate(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def run(name: str) -> None:
            barrier.wait()
            with tracer.span(name):
                with tracer.span(f"{name}-child"):
                    pass

        threads = [
            threading.Thread(target=run, args=(f"q{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.pop_finished()
        assert {r.name for r in roots} == {"q0", "q1"}
        for root in roots:
            assert [c.name for c in root.children] == [f"{root.name}-child"]

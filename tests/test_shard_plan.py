"""Shard planning: assignment, materialization, and routing metadata."""

from __future__ import annotations

import pytest

from repro.core.queries import RangeQuery, UuidQuery
from repro.errors import ShardError
from repro.lake.table import LakeTable, TableConfig
from repro.shard import (
    SHARD_LAKE_ROOT,
    ShardPlan,
    hash_shard,
)
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch, event_uuid

CONFIG = TableConfig(row_group_rows=64, page_target_bytes=4096)


def _event_lake(files: int = 4, rows: int = 40) -> LakeTable:
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(store, "lake/events", EVENT_SCHEMA, CONFIG)
    for i in range(files):
        lake.append(event_batch(rows, seed=i + 1))
    return lake


def test_hash_shard_is_stable_and_in_range():
    keys = [event_uuid(1, i) for i in range(64)] + ["str-key", 1234]
    for n in (1, 2, 4, 7):
        for key in keys:
            shard = hash_shard(key, n)
            assert 0 <= shard < n
            assert shard == hash_shard(key, n)  # deterministic


def test_plan_validation():
    with pytest.raises(ShardError):
        ShardPlan(n_shards=0)
    with pytest.raises(ShardError):
        ShardPlan(n_shards=2, replicas=0)
    with pytest.raises(ShardError):
        ShardPlan(n_shards=2, shard_by="modulo")
    with pytest.raises(ShardError):
        ShardPlan(n_shards=2).materialize(_event_lake(1), "no_such_column")


def test_hash_materialize_conserves_and_places_rows():
    lake = _event_lake()
    plan = ShardPlan(n_shards=4)
    with plan.materialize(lake, "uuid") as deployment:
        assert deployment.n_shards == 4
        assert deployment.total_rows == lake.snapshot().num_rows
        # Every shard lake holds exactly the keys hash-assigned to it.
        for group in deployment.groups:
            shard_lake = LakeTable.open(group.store, SHARD_LAKE_ROOT)
            keys = shard_lake.to_pylist("uuid")
            assert len(keys) == group.spec.num_rows
            assert all(hash_shard(k, 4) == group.shard_id for k in keys)
        # ...and the union of shards is exactly the source multiset.
        shard_keys = sorted(
            k
            for g in deployment.groups
            for k in LakeTable.open(g.store, SHARD_LAKE_ROOT).to_pylist("uuid")
        )
        assert shard_keys == sorted(lake.to_pylist("uuid"))


def test_range_materialize_builds_contiguous_spans():
    lake = _event_lake()
    plan = ShardPlan(n_shards=4, shard_by="range")
    with plan.materialize(lake, "uuid") as deployment:
        assert len(deployment.boundaries) == 3
        assert list(deployment.boundaries) == sorted(deployment.boundaries)
        assert deployment.total_rows == lake.snapshot().num_rows
        # Shard key spans are disjoint and ordered: each shard's max is
        # below the next shard's min.
        specs = [g.spec for g in deployment.groups if g.spec.num_rows]
        for left, right in zip(specs, specs[1:]):
            assert left.key_max < right.key_min
        # Equi-depth split: no shard is wildly larger than its peers.
        sizes = [s.num_rows for s in specs]
        assert max(sizes) <= 2 * min(sizes)


def test_range_route_prunes_by_minmax():
    lake = _event_lake()
    plan = ShardPlan(n_shards=4, shard_by="range")
    with plan.materialize(lake, "uuid") as deployment:
        key = event_uuid(2, 7)
        owner = deployment.assign(key)
        eligible, pruned = deployment.route("uuid", UuidQuery(key))
        assert [g.shard_id for g in eligible] == [owner]
        assert pruned == 3
        # A range query spanning two shards keeps exactly those two.
        specs = [g.spec for g in deployment.groups]
        lo, hi = specs[1].key_max, specs[2].key_min
        eligible, pruned = deployment.route("uuid", RangeQuery(lo, hi))
        assert {g.shard_id for g in eligible} == {1, 2}
        # Queries on a non-key column never key-prune.
        eligible, _ = deployment.route("text", UuidQuery(key))
        assert len(eligible) == 4


def test_hash_route_prunes_to_owning_shard():
    lake = _event_lake()
    with ShardPlan(n_shards=4).materialize(lake, "uuid") as deployment:
        for seed, i in ((1, 0), (3, 19), (4, 39)):
            key = event_uuid(seed, i)
            eligible, pruned = deployment.route("uuid", UuidQuery(key))
            assert [g.shard_id for g in eligible] == [deployment.assign(key)]
            assert pruned == 3
        # prune=False always scatters everywhere.
        eligible, pruned = deployment.route(
            "uuid", UuidQuery(event_uuid(1, 0)), prune=False
        )
        assert len(eligible) == 4 and pruned == 0


def test_partitions_survive_sharding_and_prune():
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(store, "lake/events", EVENT_SCHEMA, CONFIG)
    lake.append(event_batch(40, seed=1), partition="2026-08-01")
    lake.append(event_batch(40, seed=2), partition="2026-08-02")
    with ShardPlan(n_shards=2).materialize(lake, "uuid") as deployment:
        partitions = set().union(
            *(g.spec.partitions for g in deployment.groups)
        )
        assert partitions == {"2026-08-01", "2026-08-02"}
        eligible, _ = deployment.route(
            "text", UuidQuery(b"x"), partition="2026-08-01"
        )
        assert all(
            "2026-08-01" in g.spec.partitions for g in eligible
        )
        # An unknown partition prunes every shard.
        eligible, pruned = deployment.route(
            "text", UuidQuery(b"x"), partition="1999-01-01"
        )
        assert eligible == [] and pruned == 2


def test_empty_shards_are_never_queried():
    # One row cannot populate every shard; empty shards must be skipped.
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(store, "lake/events", EVENT_SCHEMA, CONFIG)
    batch = event_batch(1, seed=1)
    lake.append(batch)
    with ShardPlan(n_shards=4).materialize(lake, "uuid") as deployment:
        assert deployment.total_rows == 1
        eligible, _ = deployment.route(
            "text", UuidQuery(b"x"), prune=True
        )
        assert all(g.spec.num_rows for g in eligible)
        assert len(eligible) == 1


def test_replica_sets_round_robin_and_peer():
    lake = _event_lake(files=2)
    with ShardPlan(n_shards=2, replicas=3).materialize(
        lake, "uuid"
    ) as deployment:
        group = deployment.groups[0]
        assert len(group.replicas) == 3
        picks = [group.pick().replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        for replica in group.replicas:
            peer = group.peer_of(replica)
            assert peer is not None
            assert peer.replica_id != replica.replica_id
        # Without replication there is nobody to hedge to.
        single = ShardPlan(n_shards=1).materialize(lake, "uuid")
        with single:
            only = single.groups[0]
            assert only.peer_of(only.replicas[0]) is None


def test_build_indexes_tolerates_row_floor():
    # 40 rows per shard is far under ivf_pq's 256-row floor: the build
    # aborts per shard, returns 0, and the deployment still serves.
    lake = _event_lake(files=2, rows=40)
    with ShardPlan(n_shards=2).materialize(lake, "uuid") as deployment:
        assert deployment.build_indexes(
            [("emb", "ivf_pq", {"nlist": 4, "m": 8})]
        ) == 0
        assert deployment.build_indexes([("uuid", "uuid_trie", {})]) == 2

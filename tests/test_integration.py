"""End-to-end integration: full workloads, random operation schedules,
and cross-engine agreement."""

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import RottnestClient
from repro.core.maintenance import compact_indices, vacuum_indices
from repro.core.queries import SubstringQuery, UuidQuery, VectorQuery
from repro.engines.bruteforce import BruteForceEngine
from repro.errors import IndexAborted
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.text import TextWorkload
from repro.workloads.uuids import UuidWorkload
from repro.workloads.vectors import VectorWorkload, exact_knn, recall_at_k


class TestUuidWorkloadEndToEnd:
    def test_observability_lookup_story(self):
        store = InMemoryObjectStore(clock=SimClock())
        schema = Schema.of(Field("uuid", ColumnType.BINARY))
        lake = LakeTable.create(
            store, "lake/obs", schema,
            TableConfig(row_group_rows=500, page_target_bytes=4096),
        )
        gen = UuidWorkload(seed=0)
        for _ in range(5):
            lake.append({"uuid": gen.batch(400)})
        client = RottnestClient(store, "idx/obs", lake)
        client.index("uuid", "uuid_trie")
        engine = BruteForceEngine(store, lake)
        for key in gen.present_queries(10):
            rott = client.search("uuid", UuidQuery(key), k=10)
            brute, _ = engine.search("uuid", UuidQuery(key), k=10)
            assert {(m.file, m.row) for m in rott.matches} == {
                (m.file, m.row) for m in brute
            }
            assert len(rott.matches) >= 1
        for key in gen.absent_queries(10):
            assert client.search("uuid", UuidQuery(key), k=10).matches == []

    def test_search_cost_much_lower_than_brute(self):
        """The cpq gap that makes the whole paper work."""
        store = InMemoryObjectStore(clock=SimClock())
        schema = Schema.of(Field("uuid", ColumnType.BINARY))
        lake = LakeTable.create(
            store, "lake/obs", schema,
            TableConfig(row_group_rows=2000, page_target_bytes=16384),
        )
        gen = UuidWorkload(seed=1)
        for _ in range(3):
            lake.append({"uuid": gen.batch(3000)})
        client = RottnestClient(store, "idx/obs", lake)
        client.index("uuid", "uuid_trie")
        key = gen.present_queries(1)[0]

        before = store.stats.snapshot()
        client.search("uuid", UuidQuery(key), k=10)
        rott_bytes = store.stats.delta(before).bytes_read

        before = store.stats.snapshot()
        BruteForceEngine(store, lake).search("uuid", UuidQuery(key), k=10)
        brute_bytes = store.stats.delta(before).bytes_read
        assert rott_bytes < brute_bytes / 5


class TestTextWorkloadEndToEnd:
    def test_llm_data_exploration_story(self):
        store = InMemoryObjectStore(clock=SimClock())
        schema = Schema.of(Field("text", ColumnType.STRING))
        lake = LakeTable.create(
            store, "lake/corpus", schema,
            TableConfig(row_group_rows=300, page_target_bytes=8192),
        )
        gen = TextWorkload(seed=2, vocabulary_size=800)
        all_docs = []
        for _ in range(3):
            docs = gen.documents(200, avg_chars=150)
            all_docs.extend(docs)
            lake.append({"text": docs})
        client = RottnestClient(store, "idx/corpus", lake)
        client.index("text", "fm", params={"block_size": 8192, "sample_rate": 32})
        # "Leak detection": find which documents contain an eval snippet.
        for needle in gen.present_queries(all_docs, 5, length=16):
            res = client.search("text", SubstringQuery(needle), k=10_000)
            expected = sum(needle in d for d in all_docs)
            assert len(res.matches) == expected
        for needle in gen.absent_queries(5):
            assert client.search("text", SubstringQuery(needle), k=10).matches == []


class TestVectorWorkloadEndToEnd:
    def test_rag_recall_story(self):
        store = InMemoryObjectStore(clock=SimClock())
        schema = Schema.of(Field("emb", ColumnType.VECTOR, vector_dim=32))
        lake = LakeTable.create(
            store, "lake/vec", schema,
            TableConfig(row_group_rows=1000, page_target_bytes=32 * 4 * 100),
        )
        gen = VectorWorkload(dim=32, n_clusters=16, seed=3)
        chunks = [gen.batch(1500) for _ in range(2)]
        for chunk in chunks:
            lake.append({"emb": chunk})
        corpus = np.vstack(chunks)
        client = RottnestClient(store, "idx/vec", lake)
        client.index("emb", "ivf_pq", params={"nlist": 32, "m": 8})

        recalls = []
        for query in gen.queries(15):
            res = client.search(
                "emb", VectorQuery(query, nprobe=12, refine=100), k=10
            )
            # Map matches back to corpus row order for recall.
            found = []
            snap = lake.snapshot()
            offsets = {}
            base = 0
            for entry in snap.files:
                offsets[entry.path] = base
                base += entry.num_rows
            for m in res.matches:
                found.append(offsets[m.file] + m.row)
            true = exact_knn(corpus, query, 10)
            recalls.append(recall_at_k(found, true.tolist()))
        assert float(np.mean(recalls)) > 0.85

    def test_recall_increases_with_nprobe_refine(self):
        store = InMemoryObjectStore(clock=SimClock())
        schema = Schema.of(Field("emb", ColumnType.VECTOR, vector_dim=16))
        lake = LakeTable.create(store, "lake/vec", schema,
                                TableConfig(row_group_rows=1000,
                                            page_target_bytes=6400))
        gen = VectorWorkload(dim=16, n_clusters=12, seed=4)
        corpus = gen.batch(2500)
        lake.append({"emb": corpus})
        client = RottnestClient(store, "idx/vec", lake)
        client.index("emb", "ivf_pq", params={"nlist": 24, "m": 8})

        def mean_recall(nprobe, refine):
            rng = np.random.default_rng(0)
            rs = []
            for _ in range(10):
                q = corpus[rng.integers(len(corpus))]
                res = client.search(
                    "emb", VectorQuery(q, nprobe=nprobe, refine=refine), k=10
                )
                found = [m.row for m in res.matches]
                rs.append(recall_at_k(found, exact_knn(corpus, q, 10).tolist()))
            return float(np.mean(rs))

        low = mean_recall(1, 15)
        high = mean_recall(16, 150)
        assert high >= low
        assert high > 0.9


OPS = st.lists(
    st.sampled_from(["append", "delete", "index", "lake_compact",
                     "idx_compact", "vacuum", "search"]),
    min_size=3,
    max_size=12,
)


@settings(max_examples=12, deadline=None)
@given(ops=OPS, seed=st.integers(0, 1000))
def test_random_schedule_never_misses_rows(ops, seed):
    """Property: under any interleaving of lake and index operations,
    search returns exactly the live matching rows (§IV-B correctness)."""
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("uuid", ColumnType.BINARY))
    lake = LakeTable.create(
        store, "lake/p", schema,
        TableConfig(row_group_rows=64, page_target_bytes=1024),
    )
    client = RottnestClient(store, "idx/p", lake)
    rng = np.random.default_rng(seed)
    live: dict[bytes, int] = {}
    counter = 0

    def fresh_keys(n):
        nonlocal counter
        keys = [hashlib.sha256(f"{seed}:{counter + i}".encode()).digest()[:16]
                for i in range(n)]
        counter += n
        return keys

    lake.append({"uuid": fresh_keys(40)})
    for k in list(live) or []:
        pass
    # Track multiplicity of live keys.
    for i in range(counter):
        key = hashlib.sha256(f"{seed}:{i}".encode()).digest()[:16]
        live[key] = live.get(key, 0) + 1

    for op in ops:
        if op == "append":
            keys = fresh_keys(int(rng.integers(5, 30)))
            lake.append({"uuid": keys})
            for k in keys:
                live[k] = live.get(k, 0) + 1
        elif op == "delete":
            if live:
                victim = sorted(live)[int(rng.integers(len(live)))]
                lake.delete_where("uuid", lambda v: bytes(v) == victim)
                live.pop(victim)
        elif op == "index":
            try:
                client.index("uuid", "uuid_trie")
            except IndexAborted:
                pass
        elif op == "lake_compact":
            lake.compact(min_file_rows=50, target_rows=200)
        elif op == "idx_compact":
            compact_indices(client, "uuid", "uuid_trie")
        elif op == "vacuum":
            vacuum_indices(client, snapshot_id=lake.latest_version())
            store.clock.advance(7200)
            vacuum_indices(client, snapshot_id=lake.latest_version())
        elif op == "search":
            if live:
                probe = sorted(live)[int(rng.integers(len(live)))]
                res = client.search("uuid", UuidQuery(probe), k=100)
                assert len(res.matches) == live[probe]

    # Final completeness check on a few keys.
    for key, count in list(live.items())[:5]:
        res = client.search("uuid", UuidQuery(key), k=100)
        assert len(res.matches) == count
    gone = hashlib.sha256(b"never-inserted").digest()[:16]
    assert client.search("uuid", UuidQuery(gone), k=10).matches == []

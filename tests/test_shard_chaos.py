"""Chaos for the sharded deployment: one shard's store misbehaves.

The routed failure contract (ISSUE 6): a shard whose *index* reads
fail degrades to brute-force inside its own server — the routed answer
stays exact and the shard is reported degraded; a shard whose *data*
reads fail is reported failed (partial mode) or fails the query
(error mode) — never silently dropped from the merge; a crash in the
middle of a per-shard index build leaves that shard recoverable: the
build re-runs and the deployment serves exactly.
"""

from __future__ import annotations

import pytest

from repro.core.client import RottnestClient
from repro.core.queries import SubstringQuery, UuidQuery
from repro.errors import ShardUnavailable, SimulatedCrash
from repro.lake.table import LakeTable, TableConfig
from repro.obs.timeseries import TelemetryHub, use_hub
from repro.shard import QueryRouter, ShardPlan
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch, event_uuid

CONFIG = TableConfig(row_group_rows=64, page_target_bytes=4096)


def _faulty_deployment(n_shards: int = 2, indexes=(("uuid", "uuid_trie", {}),)):
    """A sharded deployment whose shard stores accept fault rules."""
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(store, "lake/events", EVENT_SCHEMA, CONFIG)
    for i in range(4):
        lake.append(event_batch(40, seed=i + 1))
    client = RottnestClient(store, "idx/events", lake)
    deployment = ShardPlan(n_shards=n_shards).materialize(
        lake,
        "uuid",
        indexes=list(indexes),
        store_factory=lambda shard_id: FaultyObjectStore(
            InMemoryObjectStore(clock=store.clock)
        ),
        cache_budget_bytes=1,  # cold reads: every query hits the rules
    )
    return lake, client, deployment


def test_index_read_fault_degrades_shard_but_stays_exact():
    lake, client, deployment = _faulty_deployment()
    with use_hub(TelemetryHub()), deployment:
        key = event_uuid(2, 10)
        target = deployment.assign(key)
        faulty: FaultyObjectStore = deployment.groups[target].store
        faulty.fail_next("GET", key_substring="idx/shard")
        with QueryRouter(deployment, hedge=None) as router:
            routed = router.query("uuid", UuidQuery(key), k=100)
        oracle = client.search("uuid", UuidQuery(key), k=100, use_indices=False)
        # The shard fell back to brute force inside its server: the
        # answer is still exact, and the degradation is reported.
        assert routed.complete
        assert routed.degraded_shards == [target]
        assert sorted(m.value for m in routed.matches) == sorted(
            m.value for m in oracle.matches
        )


def test_data_read_faults_fail_shard_loudly_partial_mode():
    lake, client, deployment = _faulty_deployment()
    with use_hub(TelemetryHub()) as hub, deployment:
        target = 0
        # Record what the doomed shard holds while its store is healthy.
        target_values = set(
            LakeTable.open(
                deployment.groups[target].store, "lake/shard"
            ).to_pylist("text")
        )
        faulty: FaultyObjectStore = deployment.groups[target].store
        # Data reads fail persistently: index probe and the brute-force
        # fallback both die (rules are one-shot, so arm a batch).
        for i in range(400):
            faulty.fail_next("GET", key_substring="lake/shard/data", countdown=i)

        needle = lake.to_pylist("text")[0][:2]  # short: matches everywhere
        oracle = client.search(
            "text", SubstringQuery(needle), k=10_000, use_indices=False
        )
        with QueryRouter(
            deployment, hedge=None, on_shard_failure="partial"
        ) as router:
            routed = router.query("text", SubstringQuery(needle), k=10_000)
        # The dead shard is reported, the survivors' union is exact.
        assert routed.failed_shards == [target]
        assert not routed.complete
        expected = sorted(
            v
            for v in (m.value for m in oracle.matches)
            if v not in target_values
        )
        assert sorted(m.value for m in routed.matches) == expected
        assert hub.series(f"router.shard{target}.failed").count() == 1


def test_data_read_faults_raise_in_error_mode():
    lake, client, deployment = _faulty_deployment()
    with use_hub(TelemetryHub()), deployment:
        faulty: FaultyObjectStore = deployment.groups[1].store
        for i in range(400):
            faulty.fail_next("GET", key_substring="lake/shard/data", countdown=i)
        needle = lake.to_pylist("text")[0][:2]
        with QueryRouter(
            deployment, hedge=None, on_shard_failure="error"
        ) as router:
            with pytest.raises(ShardUnavailable):
                router.query("text", SubstringQuery(needle), k=10_000)


def test_crash_during_shard_index_build_is_recoverable():
    lake, client, deployment = _faulty_deployment(indexes=())
    with use_hub(TelemetryHub()), deployment:
        target = 0
        faulty: FaultyObjectStore = deployment.groups[target].store
        faulty.crash_after("PUT", key_substring="idx/shard")
        with pytest.raises(SimulatedCrash):
            deployment.build_indexes([("uuid", "uuid_trie", {})])
        # The maintenance client died mid-build; a clean retry completes
        # on every shard and the deployment serves exactly.
        faulty.clear_rules()
        assert deployment.build_indexes([("uuid", "uuid_trie", {})]) == 2
        key = event_uuid(3, 5)
        with QueryRouter(deployment, hedge=None) as router:
            routed = router.query("uuid", UuidQuery(key), k=100)
        oracle = client.search("uuid", UuidQuery(key), k=100, use_indices=False)
        assert routed.complete
        assert sorted(m.value for m in routed.matches) == sorted(
            m.value for m in oracle.matches
        )

"""Columnar format: schema, encodings, pages, writer, readers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import compression
from repro.formats.encoding import (
    comparable,
    decode_values,
    encode_values,
    pack_stat,
    unpack_stat,
    value_nbytes,
)
from repro.formats.pages import build_page, decode_page, split_into_pages
from repro.formats.parquet import parse_footer, write_parquet
from repro.formats.reader import ParquetFile
from repro.formats.schema import ColumnType, Field, Schema
from repro.storage.object_store import InMemoryObjectStore


class TestCompression:
    def test_zlib_roundtrip(self):
        data = b"hello " * 100
        packed = compression.compress(data, compression.ZLIB)
        assert len(packed) < len(data)
        assert compression.decompress(packed, compression.ZLIB) == data

    def test_none_passthrough(self):
        assert compression.compress(b"x", compression.NONE) == b"x"

    def test_codec_names(self):
        assert compression.codec_id("zlib") == compression.ZLIB
        assert compression.codec_name(compression.NONE) == "none"

    def test_unknown_codec(self):
        with pytest.raises(FormatError):
            compression.codec_id("snappy")
        with pytest.raises(FormatError):
            compression.decompress(b"x", 99)

    def test_corrupt_zlib(self):
        with pytest.raises(FormatError):
            compression.decompress(b"not zlib", compression.ZLIB)


class TestSchema:
    def test_vector_requires_dim(self):
        with pytest.raises(FormatError):
            Field("v", ColumnType.VECTOR)

    def test_non_vector_rejects_dim(self):
        with pytest.raises(FormatError):
            Field("x", ColumnType.INT64, vector_dim=4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(FormatError):
            Schema.of(Field("a", ColumnType.INT64), Field("a", ColumnType.STRING))

    def test_field_lookup(self):
        s = Schema.of(Field("a", ColumnType.INT64), Field("b", ColumnType.STRING))
        assert s.field("b").type is ColumnType.STRING
        assert s.index_of("a") == 0
        with pytest.raises(FormatError):
            s.field("c")
        with pytest.raises(FormatError):
            s.index_of("c")

    def test_serialize_roundtrip(self):
        from repro.util.binio import BinaryReader, BinaryWriter

        s = Schema.of(
            Field("a", ColumnType.INT64),
            Field("v", ColumnType.VECTOR, vector_dim=12),
        )
        w = BinaryWriter()
        s.serialize(w)
        assert Schema.deserialize(BinaryReader(w.getvalue())) == s


class TestEncoding:
    @pytest.mark.parametrize(
        "field,values",
        [
            (Field("i", ColumnType.INT64), [0, -5, 2**40, -(2**40)]),
            (Field("f", ColumnType.FLOAT64), [0.0, -1.5, 3.14159]),
            (Field("s", ColumnType.STRING), ["", "hello", "δοκιμή"]),
            (Field("b", ColumnType.BINARY), [b"", b"\x00\xff", b"abc"]),
        ],
    )
    def test_roundtrip(self, field, values):
        data = encode_values(field, values)
        assert decode_values(field, data, len(values)) == values

    def test_vector_roundtrip(self):
        f = Field("v", ColumnType.VECTOR, vector_dim=4)
        values = np.arange(12, dtype=np.float32).reshape(3, 4)
        data = encode_values(f, values)
        out = decode_values(f, data, 3)
        assert np.array_equal(out, values)

    def test_vector_wrong_dim_rejected(self):
        f = Field("v", ColumnType.VECTOR, vector_dim=4)
        with pytest.raises(FormatError):
            encode_values(f, np.zeros((2, 5), dtype=np.float32))

    def test_short_page_rejected(self):
        f = Field("i", ColumnType.INT64)
        with pytest.raises(FormatError):
            decode_values(f, b"\x00" * 7, 1)

    def test_value_nbytes_matches_encoding(self):
        f = Field("s", ColumnType.STRING)
        for v in ["", "x", "hello world", "y" * 300]:
            assert value_nbytes(f, v) == len(encode_values(f, [v]))

    def test_stats_roundtrip(self):
        for f, v in [
            (Field("i", ColumnType.INT64), -42),
            (Field("f", ColumnType.FLOAT64), 2.5),
            (Field("s", ColumnType.STRING), "zed"),
            (Field("b", ColumnType.BINARY), b"\x01\x02"),
        ]:
            assert unpack_stat(f, pack_stat(f, v)) == v

    def test_vector_has_no_stats(self):
        f = Field("v", ColumnType.VECTOR, vector_dim=2)
        assert not comparable(f)
        with pytest.raises(FormatError):
            pack_stat(f, np.zeros(2))

    @given(st.lists(st.text(max_size=40), min_size=1, max_size=50))
    def test_string_roundtrip_property(self, values):
        f = Field("s", ColumnType.STRING)
        data = encode_values(f, values)
        assert decode_values(f, data, len(values)) == values


class TestPages:
    def test_split_respects_target(self):
        f = Field("s", ColumnType.STRING)
        values = ["x" * 100] * 10
        pages = split_into_pages(f, values, target_bytes=250)
        assert all(len(p) <= 3 for p in pages)
        assert sum(len(p) for p in pages) == 10

    def test_oversized_value_gets_own_page(self):
        f = Field("s", ColumnType.STRING)
        pages = split_into_pages(f, ["small", "B" * 10_000, "small"], 100)
        assert [len(p) for p in pages] == [1, 1, 1]

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            split_into_pages(Field("i", ColumnType.INT64), [1], 0)

    def test_page_roundtrip(self):
        f = Field("s", ColumnType.STRING)
        values = ["alpha", "beta", "gamma"]
        built = build_page(f, values, compression.ZLIB)
        assert decode_page(f, built.data, compression.ZLIB, 3) == values
        assert built.num_values == 3


@pytest.fixture
def text_file():
    schema = Schema.of(
        Field("id", ColumnType.INT64), Field("text", ColumnType.STRING)
    )
    columns = {
        "id": list(range(1000)),
        "text": [f"document number {i} body" for i in range(1000)],
    }
    result = write_parquet(
        schema, columns, row_group_rows=300, page_target_bytes=1500
    )
    store = InMemoryObjectStore()
    store.put("f.parquet", result.data)
    return store, result, schema, columns


class TestWriter:
    def test_rejects_empty(self):
        schema = Schema.of(Field("i", ColumnType.INT64))
        with pytest.raises(FormatError):
            write_parquet(schema, {"i": []})

    def test_rejects_ragged(self):
        schema = Schema.of(
            Field("a", ColumnType.INT64), Field("b", ColumnType.INT64)
        )
        with pytest.raises(FormatError):
            write_parquet(schema, {"a": [1], "b": [1, 2]})

    def test_rejects_wrong_columns(self):
        schema = Schema.of(Field("a", ColumnType.INT64))
        with pytest.raises(FormatError):
            write_parquet(schema, {"b": [1]})

    def test_rejects_bad_row_group(self):
        schema = Schema.of(Field("a", ColumnType.INT64))
        with pytest.raises(FormatError):
            write_parquet(schema, {"a": [1]}, row_group_rows=0)

    def test_row_groups_and_pages(self, text_file):
        _, result, _, _ = text_file
        meta = result.metadata
        assert len(meta.row_groups) == 4  # 1000 rows / 300
        assert meta.num_rows == 1000
        chunk = meta.row_groups[0].chunk("text")
        assert len(chunk.pages) > 1  # page target splits the chunk
        # Page row ranges tile the chunk exactly.
        cursor = 0
        for page in chunk.pages:
            assert page.first_row == cursor
            cursor += page.num_values
        assert cursor == 300

    def test_footer_roundtrip(self, text_file):
        _, result, _, _ = text_file
        from repro.formats.parquet import _serialize_footer

        footer = _serialize_footer(result.metadata)
        assert parse_footer(footer) == result.metadata

    def test_chunk_stats(self, text_file):
        _, result, _, _ = text_file
        stats = result.metadata.chunk_stats("id")
        assert stats[0] == (0, 299)
        assert stats[3] == (900, 999)


class TestTraditionalReader:
    def test_open_and_scan(self, text_file):
        store, _, _, columns = text_file
        pf = ParquetFile(store, "f.parquet")
        assert pf.num_rows == 1000
        values = [v for _, v in pf.scan_column("text")]
        assert values == columns["text"]

    def test_scan_yields_row_indices(self, text_file):
        store, _, _, _ = text_file
        pf = ParquetFile(store, "f.parquet")
        rows = [r for r, _ in pf.scan_column("id")]
        assert rows == list(range(1000))

    def test_read_rows(self, text_file):
        store, _, _, columns = text_file
        pf = ParquetFile(store, "f.parquet")
        got = pf.read_rows("text", [5, 500, 999, 5])
        assert got == {r: columns["text"][r] for r in (5, 500, 999)}

    def test_read_rows_out_of_range(self, text_file):
        store, _, _, _ = text_file
        pf = ParquetFile(store, "f.parquet")
        with pytest.raises(FormatError):
            pf.read_rows("text", [5000])

    def test_read_rows_empty(self, text_file):
        store, _, _, _ = text_file
        pf = ParquetFile(store, "f.parquet")
        assert pf.read_rows("text", []) == {}

    def test_chunk_granularity_io(self, text_file):
        """The traditional reader's defining cost: one row costs the
        whole chunk (paper §II-B 'read granularity')."""
        store, result, _, _ = text_file
        pf = ParquetFile(store, "f.parquet")
        chunk_size = result.metadata.row_groups[0].chunk("text").total_compressed_size
        before = store.stats.bytes_read
        pf.read_rows("text", [0])
        assert store.stats.bytes_read - before == chunk_size

    def test_bad_magic_rejected(self):
        store = InMemoryObjectStore()
        store.put("bad", b"Z" * 100)
        with pytest.raises(FormatError):
            ParquetFile(store, "bad")

    def test_int_column_roundtrip(self, text_file):
        store, _, _, columns = text_file
        pf = ParquetFile(store, "f.parquet")
        assert pf.read_column_chunk(1, "id") == columns["id"][300:600]

    def test_vector_file_roundtrip(self):
        schema = Schema.of(Field("v", ColumnType.VECTOR, vector_dim=8))
        vecs = np.arange(80, dtype=np.float32).reshape(10, 8)
        result = write_parquet(schema, {"v": vecs}, row_group_rows=4)
        store = InMemoryObjectStore()
        store.put("v.parquet", result.data)
        pf = ParquetFile(store, "v.parquet")
        assert np.array_equal(pf.read_column_chunk(0, "v"), vecs[:4])
        assert np.array_equal(pf.read_column_chunk(2, "v"), vecs[8:])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 400),
    rg=st.integers(1, 120),
    page_bytes=st.integers(64, 4096),
)
def test_writer_reader_roundtrip_property(n, rg, page_bytes):
    """Any geometry round-trips exactly through write + scan."""
    schema = Schema.of(Field("t", ColumnType.STRING))
    values = [f"row-{i}-" + "p" * (i % 37) for i in range(n)]
    result = write_parquet(
        schema, {"t": values}, row_group_rows=rg, page_target_bytes=page_bytes
    )
    store = InMemoryObjectStore()
    store.put("f", result.data)
    pf = ParquetFile(store, "f")
    assert [v for _, v in pf.scan_column("t")] == values

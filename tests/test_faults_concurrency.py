"""FaultRule under concurrency: exactly one trigger, no lost countdowns."""

from __future__ import annotations

import threading

from repro.errors import InjectedFault
from repro.storage.faults import FaultRule, FaultyObjectStore


class TestFaultRuleThreadSafety:
    def test_exactly_one_fire_under_contention(self):
        """8 threads x 100 matching ops against countdown=20: the rule
        must fire exactly once, on the 21st matching op overall."""
        rule = FaultRule(op="GET", countdown=20)
        fired = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def hammer() -> None:
            barrier.wait()
            for _ in range(100):
                if rule.matches("GET", "some/key"):
                    with lock:
                        fired.append(threading.current_thread().name)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(fired) == 1
        assert rule.fired
        assert rule.countdown == 0
        # Once fired, the rule never matches again.
        assert not rule.matches("GET", "some/key")

    def test_non_matching_ops_do_not_consume_countdown(self):
        rule = FaultRule(op="PUT", countdown=1)
        assert not rule.matches("GET", "k")
        assert rule.countdown == 1
        assert not rule.matches("PUT", "k")  # consumes the countdown
        assert rule.matches("PUT", "k")  # fires
        assert not rule.matches("PUT", "k")

    def test_key_predicate_unchanged(self):
        rule = FaultRule(op="*", key_predicate=lambda k: "idx/" in k)
        assert not rule.matches("GET", "lake/data")
        assert rule.matches("GET", "idx/files/a")

    def test_faulty_store_still_fires_once(self, store):
        store.put("idx/a", b"x")
        faulty = FaultyObjectStore(store)
        faulty.fail_next("GET", "idx/")
        errors = []
        barrier = threading.Barrier(4)

        def reader() -> None:
            barrier.wait()
            for _ in range(10):
                try:
                    faulty.get("idx/a")
                except InjectedFault as exc:
                    errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(errors) == 1

"""Binary trie index: correctness vs a hash-map reference (§V-C1)."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RottnestIndexError
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.formats.page_reader import PageEntry, PageTable
from repro.indices.bits import lcp_bits, prefix_matches, truncate_bits
from repro.indices.uuid_trie import UuidTrieBuilder, UuidTrieQuerier
from repro.storage.object_store import InMemoryObjectStore


class TestBitHelpers:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (b"\x00", b"\x00", 8),
            (b"\x00", b"\x80", 0),
            (b"\x00", b"\x01", 7),
            (b"\xff\x00", b"\xff\x80", 8),
            (b"\xab\xcd", b"\xab\xcd", 16),
            (b"\xab", b"\xab\xcd", 8),
        ],
    )
    def test_lcp_bits(self, a, b, expected):
        assert lcp_bits(a, b) == expected
        assert lcp_bits(b, a) == expected

    @pytest.mark.parametrize(
        "key,bits,expected",
        [
            (b"\xff\xff", 4, b"\xf0"),
            (b"\xff\xff", 8, b"\xff"),
            (b"\xff\xff", 12, b"\xff\xf0"),
            (b"\xff\xff", 16, b"\xff\xff"),
            (b"\xff\xff", 99, b"\xff\xff"),
            (b"\xab", 0, b""),
        ],
    )
    def test_truncate_bits(self, key, bits, expected):
        assert truncate_bits(key, bits) == expected

    def test_prefix_matches(self):
        assert prefix_matches(b"\xf0", 4, b"\xff\x00")
        assert not prefix_matches(b"\xf0", 4, b"\x0f")
        assert not prefix_matches(b"\xf0\x00", 12, b"\xf0")  # key too short

    @given(st.binary(min_size=1, max_size=8), st.integers(1, 64))
    def test_truncation_is_prefix(self, key, bits):
        bits = min(bits, len(key) * 8)
        assert prefix_matches(truncate_bits(key, bits), bits, key)


def key_of(i: int) -> bytes:
    return hashlib.sha256(str(i).encode()).digest()[:16]


def build_pages(n_keys: int, n_pages: int):
    pages: dict[int, list[bytes]] = {g: [] for g in range(n_pages)}
    truth: dict[bytes, int] = {}
    for i in range(n_keys):
        key = key_of(i)
        gid = i % n_pages
        pages[gid].append(key)
        truth[key] = gid
    return list(pages.items()), truth


def store_index(builder, n_pages, **write_kwargs):
    table = PageTable(
        "f.parquet",
        "uuid",
        [
            PageEntry("f.parquet", i, 4 + i * 100, 100, 10, i * 10, 1)
            for i in range(n_pages)
        ],
    )
    w = IndexFileWriter("uuid_trie", "uuid", PageDirectory([table]))
    builder.write(w, **write_kwargs)
    store = InMemoryObjectStore()
    store.put("i.index", w.finish())
    return store, IndexFileReader.open(store, "i.index")


class TestTrieBuild:
    def test_empty_rejected(self):
        with pytest.raises(RottnestIndexError):
            UuidTrieBuilder.build([])

    def test_empty_key_rejected(self):
        with pytest.raises(RottnestIndexError):
            UuidTrieBuilder.build([(0, [b""])])

    def test_all_present_keys_found(self):
        pages, truth = build_pages(2000, 8)
        builder = UuidTrieBuilder.build(pages)
        store, reader = store_index(builder, 8)
        q = UuidTrieQuerier(reader)
        for i in range(0, 2000, 97):
            key = key_of(i)
            assert truth[key] in q.candidate_pages(key)

    def test_absent_keys_rarely_match(self):
        pages, _ = build_pages(1000, 4)
        builder = UuidTrieBuilder.build(pages)
        _, reader = store_index(builder, 4)
        q = UuidTrieQuerier(reader)
        false_hits = sum(
            bool(q.candidate_pages(hashlib.sha256(f"absent{i}".encode()).digest()[:16]))
            for i in range(200)
        )
        # LCP+8 extra bits makes false positives vanishingly rare.
        assert false_hits <= 2

    def test_duplicate_keys_merge_postings(self):
        key = key_of(1)
        builder = UuidTrieBuilder.build([(0, [key]), (3, [key])])
        _, reader = store_index(builder, 4)
        q = UuidTrieQuerier(reader)
        assert q.candidate_pages(key) == [0, 3]

    def test_empty_query_rejected(self):
        pages, _ = build_pages(10, 1)
        builder = UuidTrieBuilder.build(pages)
        _, reader = store_index(builder, 1)
        with pytest.raises(RottnestIndexError):
            UuidTrieQuerier(reader).candidate_pages(b"")

    def test_truncation_smaller_than_full_keys(self):
        pages, _ = build_pages(5000, 8)
        builder = UuidTrieBuilder.build(pages)
        total_prefix_bytes = sum(len(e.prefix) for e in builder.entries)
        assert total_prefix_bytes < 5000 * 16 / 2  # better than half


class TestTrieSerialization:
    def test_load_roundtrip(self):
        pages, _ = build_pages(500, 4)
        builder = UuidTrieBuilder.build(pages)
        _, reader = store_index(builder, 4)
        loaded = UuidTrieBuilder.load(reader)
        assert len(loaded.entries) == len(builder.entries)
        assert loaded.entries[0].prefix == builder.entries[0].prefix

    def test_small_components_increase_leaf_count(self):
        pages, _ = build_pages(2000, 4)
        builder = UuidTrieBuilder.build(pages)
        _, r_small = store_index(builder, 4, component_target_bytes=1024)
        _, r_big = store_index(builder, 4, component_target_bytes=1 << 20)
        assert r_small.params["num_leaves"] > r_big.params["num_leaves"]

    def test_query_reads_one_leaf(self):
        pages, truth = build_pages(3000, 4)
        builder = UuidTrieBuilder.build(pages)
        store, reader = store_index(builder, 4, component_target_bytes=2048)
        q = UuidTrieQuerier(reader)
        key = key_of(123)
        trace = store.start_trace()
        q.candidate_pages(key)
        t = store.stop_trace()
        # LUT rides in the tail; at most one leaf GET (zero if the whole
        # file fit in the tail, but 3000 keys exceed 256 KB? not always).
        assert t.total_requests <= 1

    def test_merge_equals_joint_build(self):
        pages, truth = build_pages(600, 6)
        b_all = UuidTrieBuilder.build(pages)
        b1 = UuidTrieBuilder.build(pages[:3])
        b2 = UuidTrieBuilder.build([(g - 3, vals) for g, vals in pages[3:]])
        merged = UuidTrieBuilder.merge([b1, b2], [0, 3])
        _, reader = store_index(merged, 6)
        q = UuidTrieQuerier(reader)
        for i in range(0, 600, 41):
            key = key_of(i)
            assert truth[key] in q.candidate_pages(key)

    def test_merge_mismatched_offsets_rejected(self):
        pages, _ = build_pages(10, 1)
        b = UuidTrieBuilder.build(pages)
        with pytest.raises(RottnestIndexError):
            UuidTrieBuilder.merge([b], [0, 1])


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(
        st.binary(min_size=2, max_size=12), min_size=1, max_size=80, unique=True
    ),
    n_pages=st.integers(1, 6),
)
def test_trie_matches_dict_reference(keys, n_pages):
    """Property: trie lookups are a superset of exact-match truth and
    never miss (false positives allowed, false negatives never)."""
    pages: dict[int, list[bytes]] = {g: [] for g in range(n_pages)}
    truth: dict[bytes, set[int]] = {}
    for i, key in enumerate(keys):
        gid = i % n_pages
        pages[gid].append(key)
        truth.setdefault(key, set()).add(gid)
    builder = UuidTrieBuilder.build(list(pages.items()))
    _, reader = store_index(builder, n_pages)
    q = UuidTrieQuerier(reader)
    for key, expected in truth.items():
        got = set(q.candidate_pages(key))
        assert expected <= got

"""Crash matrices for the ingest tier's write path and drain handoff.

``tests/test_chaos.py`` pins the maintenance verbs (index, compact,
vacuum); this module does the same for the two verbs the real-time
tier added — ``ingest`` (one WAL-frame PUT: the atomic ack) and
``drain`` (seal -> flush -> commit -> index -> truncate). The bar is
byte-identical convergence: crash at ANY mutation boundary, re-run
from a fresh client, and the store must hold exactly the bytes of the
uninterrupted run (modulo metadata checkpoints; see the harness
docstring for why those are excluded).

A hypothesis property rides along: for a random number of pending
batches and a crash after a random prefix of the drain's mutation
sequence, the recovered system still answers the search oracle — every
acked row lands in exactly one tier, none dropped, none duplicated.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import CRASH_POINTS, crash_matrix
from repro.core.client import RottnestClient
from repro.core.queries import UuidQuery
from repro.errors import SimulatedCrash
from repro.ingest import IngestDrainer, IngestTier
from repro.lake.table import LakeTable, TableConfig
from repro.maintain.pipeline import MaintenancePipeline
from repro.obs.timeseries import TelemetryHub, use_hub
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch, event_uuid

LAKE_ROOT = "lake/events"
INGEST_ROOT = "ingest/events"
INDEX_DIR = "idx/events"

# Checkpoint on every lake commit so `drain:put-lake-checkpoint` is
# part of every matrix, not a 1-in-10 accident (the meta interval gets
# the same treatment in _make_client).
LAKE_CONFIG = TableConfig(
    row_group_rows=200, page_target_bytes=2048, checkpoint_interval=1
)


def _make_client(store) -> RottnestClient:
    # Fixed key entropy: index keys must be deterministic for a
    # crashed-then-recovered drain to be compared byte-for-byte
    # against the uninterrupted reference (compare="bytes").
    client = RottnestClient(
        store,
        INDEX_DIR,
        LakeTable.open(store, LAKE_ROOT, LAKE_CONFIG),
        key_entropy=lambda: b"\x00\x00\x00\x00",
    )
    client.meta.checkpoint_interval = 1
    return client


def _tier(client: RottnestClient) -> IngestTier:
    return IngestTier(client.store, INGEST_ROOT, client.lake)


def _base(pending_batches: int = 2, rows: int = 30):
    """A warm indexed lake plus ``pending_batches`` undrained segments."""
    clock = SimClock(start=1_000_000.0)
    store = InMemoryObjectStore(clock=clock)
    lake = LakeTable.create(store, LAKE_ROOT, EVENT_SCHEMA, LAKE_CONFIG)
    lake.append(event_batch(60, seed=1))
    _make_client(store).index("uuid", "uuid_trie")
    tier = IngestTier(store, INGEST_ROOT, lake)
    for j in range(pending_batches):
        tier.ingest(event_batch(rows, seed=10 + j))
    clock.advance(5.0)
    return clock, store


def _drain_plain(client: RottnestClient) -> None:
    with use_hub(TelemetryHub()):
        IngestDrainer(_tier(client)).drain()


def _drain_indexed(client: RottnestClient) -> None:
    with use_hub(TelemetryHub()):
        with MaintenancePipeline(client, workers=1) as pipeline:
            IngestDrainer(
                _tier(client),
                pipeline=pipeline,
                index_specs=[("uuid", "uuid_trie", {})],
            ).drain()


# ---------------------------------------------------------------------
# ingest: the write path's entire crash surface is one PUT
# ---------------------------------------------------------------------
class TestIngestCrashMatrix:
    def test_single_mutation_is_the_atomic_ack(self):
        clock, store = _base(pending_batches=1)
        matrix = crash_matrix(
            store,
            _make_client,
            "ingest",
            lambda c: _tier(c).ingest(event_batch(25, seed=50)),
            # Recovery for a lost ack is WAL replay, not a retry: the
            # frame PUT either landed (rows durable) or it didn't (the
            # writer was never acked); re-ingesting would duplicate.
            recover=lambda c: _tier(c).recover(),
            compare="bytes",
        )
        assert matrix.mutations == 1
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() == {"ingest:put-wal-frame"}

    def test_crashed_ack_is_durable_and_searchable_after_replay(self):
        """crash_after fires with the PUT already durable — so even an
        ingest whose ack never reached the writer must surface its rows
        from a rebuilt tier (no silent drop of acked-or-landed data)."""
        clock, store = _base(pending_batches=0)
        faulty = FaultyObjectStore(store)
        faulty.crash_after("MUTATE", countdown=0)
        doomed = IngestTier(
            faulty, INGEST_ROOT, LakeTable.open(faulty, LAKE_ROOT, LAKE_CONFIG)
        )
        with pytest.raises(SimulatedCrash):
            doomed.ingest(event_batch(25, seed=50))

        client = _make_client(store)
        client.fresh_tier = _tier(client)
        hits = client.search("uuid", UuidQuery(event_uuid(50, 3)), k=10)
        assert len(hits.matches) == 1
        assert hits.matches[0].file.startswith(client.fresh_tier.wal.prefix)


# ---------------------------------------------------------------------
# drain: every handoff boundary, byte-identical after recovery
# ---------------------------------------------------------------------
class TestDrainCrashMatrix:
    def test_plain_drain_every_crash_point_byte_identical(self):
        clock, store = _base(pending_batches=2)
        matrix = crash_matrix(
            store, _make_client, "drain", _drain_plain, compare="bytes"
        )
        # 2 seals + data file + lake commit + lake checkpoint + 4
        # truncation DELETEs (each segment drops a frame and a seal).
        assert matrix.mutations >= 9
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() <= set(CRASH_POINTS)
        assert {
            "drain:put-seal-marker",
            "drain:put-data-file",
            "drain:put-lake-commit",
            "drain:put-lake-checkpoint",
            "drain:delete-wal-frame",
        } <= matrix.crash_points()

    def test_indexed_drain_every_crash_point_byte_identical(self):
        clock, store = _base(pending_batches=2)
        matrix = crash_matrix(
            store, _make_client, "drain", _drain_indexed, compare="bytes"
        )
        assert matrix.all_recoverable, matrix.describe()
        assert matrix.crash_points() <= set(CRASH_POINTS)
        # The index stage reuses the maintenance protocol's boundaries,
        # reclassified under the drain verb.
        assert {
            "drain:put-index-file",
            "drain:put-meta-commit",
            "drain:put-meta-checkpoint",
        } <= matrix.crash_points()

    def test_crash_between_commit_and_lake_checkpoint_converges(self):
        """Regression: the retried drain after a crash-on-commit has
        nothing left to flush (the floor already moved), so the empty
        path must write the due lake checkpoint itself or the wreck
        never converges on the reference bytes."""
        from repro.chaos.harness import _logical_state

        clock, store = _base(pending_batches=1)
        reference = store.clone()
        _drain_plain(_make_client(reference))

        wreck = store.clone()
        faulty = FaultyObjectStore(wreck)
        faulty.crash_after("PUT", "/_log/")
        with pytest.raises(SimulatedCrash):
            _drain_plain(_make_client(faulty))
        # The commit landed but the handoff is visibly incomplete.
        assert _logical_state(wreck) != _logical_state(reference)
        _drain_plain(_make_client(wreck))
        assert _logical_state(wreck) == _logical_state(reference)


# ---------------------------------------------------------------------
# the prefix-crash property (hypothesis)
# ---------------------------------------------------------------------
class TestDrainPrefixCrashProperty:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_any_prefix_crash_preserves_the_search_oracle(self, data):
        """seal -> drain -> commit crashed after any mutation prefix,
        then re-drained, answers the same oracle: every acked row in
        exactly one tier, exactly once."""
        batches = data.draw(st.integers(1, 3), label="batches")
        rows = data.draw(st.integers(3, 10), label="rows")
        clock = SimClock(start=1_000_000.0)
        store = InMemoryObjectStore(clock=clock)
        lake = LakeTable.create(store, LAKE_ROOT, EVENT_SCHEMA, LAKE_CONFIG)
        lake.append(event_batch(20, seed=1))
        _make_client(store).index("uuid", "uuid_trie")
        tier = IngestTier(store, INGEST_ROOT, lake)
        for j in range(batches):
            tier.ingest(event_batch(rows, seed=10 + j))
        clock.advance(5.0)

        # The uninterrupted run defines the crash surface.
        reference = store.clone()
        before = reference.stats.snapshot()
        _drain_indexed(_make_client(reference))
        mutations = (lambda d: d.puts + d.deletes)(
            reference.stats.snapshot().delta(before)
        )
        assert mutations > 0

        n = data.draw(st.integers(0, mutations - 1), label="crash_after")
        wreck = store.clone()
        faulty = FaultyObjectStore(wreck)
        faulty.crash_after("MUTATE", countdown=n)
        with pytest.raises(SimulatedCrash):
            _drain_indexed(_make_client(faulty))
        # Recovery is the operation itself, fault-free.
        _drain_indexed(_make_client(wreck))

        client = _make_client(wreck)
        client.fresh_tier = IngestTier(wreck, INGEST_ROOT, client.lake)
        assert client.fresh_tier.pending_rows() == 0
        # Row-count conservation: warm batch + every acked batch, once.
        total = sum(f.num_rows for f in client.lake.snapshot().files)
        assert total == 20 + batches * rows
        # Identity: probe rows from every batch, and the warm file.
        for j in range(batches):
            for i in {0, rows // 2, rows - 1}:
                hits = client.search(
                    "uuid", UuidQuery(event_uuid(10 + j, i)), k=5
                )
                assert len(hits.matches) == 1, (j, i, hits)
        warm = client.search("uuid", UuidQuery(event_uuid(1, 0)), k=5)
        assert len(warm.matches) == 1

"""`repro serve-bench --telemetry`, `repro slo-check`, `repro dashboard`."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cli import main
from repro.obs import TELEMETRY_SCHEMA, load_telemetry_json


@pytest.fixture
def indexed_bucket(tmp_path, capsys):
    bucket = str(tmp_path / "bucket")
    assert main([
        "create-table", "--root", bucket, "--table", "lake/logs",
        "--schema", "request_id:binary",
        "--row-group-rows", "100", "--page-target-bytes", "1024",
    ]) == 0
    keys = [hashlib.sha256(f"k-{i}".encode()).digest()[:16] for i in range(200)]
    jsonl = tmp_path / "rows.jsonl"
    with open(jsonl, "w") as f:
        for key in keys:
            f.write(json.dumps({"request_id": key.hex()}) + "\n")
    assert main([
        "append", "--root", bucket, "--table", "lake/logs",
        "--jsonl", str(jsonl),
    ]) == 0
    assert main([
        "index", "--root", bucket, "--table", "lake/logs",
        "--index-dir", "idx/logs", "--column", "request_id",
        "--type", "uuid_trie",
    ]) == 0
    capsys.readouterr()
    return bucket, keys


@pytest.fixture
def telemetry_file(indexed_bucket, tmp_path, capsys):
    bucket, keys = indexed_bucket
    path = str(tmp_path / "TELEMETRY_serve.json")
    assert main([
        "serve-bench", "--root", bucket, "--table", "lake/logs",
        "--index-dir", "idx/logs", "--column", "request_id",
        "--uuid", keys[3].hex(), "--repeat", "3", "--clients", "2",
        "--telemetry", path,
    ]) == 0
    capsys.readouterr()
    return path


def test_serve_bench_emits_valid_snapshot(telemetry_file):
    with open(telemetry_file) as f:
        payload = json.load(f)
    assert payload["schema"] == TELEMETRY_SCHEMA
    assert payload["source"] == "serve-bench"
    hub = load_telemetry_json(telemetry_file)
    # 1 cold query + 2 clients x 3 repeats.
    assert hub.series("serve.queries").count() == 7
    assert hub.quantiles("serve.latency_s").merged().count == 7
    assert hub.ledger.serve_queries >= 1  # deduplicated flights bill once
    assert hub.ledger.data_bytes > 0
    assert hub.ledger.index_bytes > 0
    assert len(hub.tail) == hub.ledger.serve_queries


def test_slo_check_passes_on_healthy_run(telemetry_file, capsys):
    assert main(["slo-check", "--telemetry", telemetry_file]) == 0
    out = capsys.readouterr().out
    assert "all objectives met" in out


def test_slo_check_trips_on_seeded_breach(telemetry_file, capsys):
    code = main([
        "slo-check", "--telemetry", telemetry_file,
        "--latency-p99-s", "1e-9",
    ])
    assert code == 2
    out = capsys.readouterr().out
    assert "SLO BREACHED" in out


def test_slo_check_rejects_empty_telemetry(tmp_path, capsys):
    from repro.obs import TelemetryHub, write_telemetry_json

    path = str(tmp_path / "empty.json")
    write_telemetry_json(path, TelemetryHub())
    assert main(["slo-check", "--telemetry", path]) == 3
    assert "no query events" in capsys.readouterr().err


def test_dashboard_command_renders_html(telemetry_file, tmp_path, capsys):
    out_path = str(tmp_path / "dash.html")
    assert main([
        "dashboard", "--telemetry", telemetry_file, "--out", out_path,
    ]) == 0
    with open(out_path) as f:
        doc = f.read()
    assert doc.startswith("<!DOCTYPE html>")
    assert "Measured TCO position" in doc
    assert "SLO status" in doc

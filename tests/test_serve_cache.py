"""CachingObjectStore: transparency, eviction, admission, dedup."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidByteRange, ObjectNotFound, PreconditionFailed
from repro.serve.cache import CachingObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.retry import RetryingObjectStore
from repro.util.clock import SimClock


def _fresh_pair(**cache_kwargs):
    inner = InMemoryObjectStore(clock=SimClock(start=1_000.0))
    return inner, CachingObjectStore(inner, **cache_kwargs)


# -- transparency: the hypothesis property test -----------------------

_KEYS = st.sampled_from(["a", "ab", "b/x", "b/y"])
_DATA = st.binary(min_size=0, max_size=12)
_RANGES = st.one_of(
    st.none(),
    st.tuples(st.integers(-1, 14), st.integers(-1, 14)),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _KEYS, _DATA),
        st.tuples(st.just("put_cond"), _KEYS, _DATA),
        st.tuples(st.just("get"), _KEYS, _RANGES),
        st.tuples(st.just("delete"), _KEYS),
        st.tuples(st.just("head"), _KEYS),
        st.tuples(st.just("list"), st.sampled_from(["", "a", "b/", "zz"])),
        st.tuples(st.just("clear")),
    ),
    min_size=1,
    max_size=40,
)


def _apply(store, op):
    """Run one op, returning ('ok', value) or ('err', exception type)."""
    try:
        if op[0] == "put":
            info = store.put(op[1], op[2])
            return ("ok", (info.key, info.size))
        if op[0] == "put_cond":
            info = store.put(op[1], op[2], if_none_match=True)
            return ("ok", (info.key, info.size))
        if op[0] == "get":
            return ("ok", store.get(op[1], op[2]))
        if op[0] == "delete":
            return ("ok", store.delete(op[1]))
        if op[0] == "head":
            info = store.head(op[1])
            return ("ok", (info.key, info.size))
        if op[0] == "list":
            return ("ok", [(i.key, i.size) for i in store.list(op[1])])
        raise AssertionError(op)
    except (ObjectNotFound, InvalidByteRange, PreconditionFailed) as exc:
        return ("err", type(exc))


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_cache_is_transparent(ops):
    """Any op sequence through the cache returns byte-identical results
    to the bare store — including after put-overwrite and delete."""
    reference = InMemoryObjectStore(clock=SimClock(start=1_000.0))
    _, cached = _fresh_pair(budget_bytes=64, max_entry_bytes=32)
    for op in ops:
        if op[0] == "clear":
            cached.clear()  # wrapper-only op; reference unaffected
            continue
        assert _apply(cached, op) == _apply(reference, op), op


def test_put_overwrite_invalidates():
    inner, cached = _fresh_pair()
    cached.put("k", b"old-value")
    assert cached.get("k") == b"old-value"
    cached.put("k", b"new")
    assert cached.get("k") == b"new"
    assert cached.get("k", (0, 3)) == b"new"
    assert cached.cache_stats.invalidations >= 1


def test_delete_invalidates():
    inner, cached = _fresh_pair()
    cached.put("k", b"v")
    cached.get("k")
    cached.delete("k")
    with pytest.raises(ObjectNotFound):
        cached.get("k")


def test_writes_behind_the_cache_can_go_stale():
    """The transparency contract requires writes through the wrapper;
    this documents (not endorses) what happens otherwise."""
    inner, cached = _fresh_pair()
    inner.put("k", b"v1")
    assert cached.get("k") == b"v1"
    inner.put("k", b"v2")  # behind the cache's back
    assert cached.get("k") == b"v1"  # stale, by design
    cached.invalidate("k")
    assert cached.get("k") == b"v2"


# -- LRU budget + admission ------------------------------------------


def test_lru_eviction_respects_budget():
    inner, cached = _fresh_pair(budget_bytes=100, max_entry_bytes=100)
    for key in ("k1", "k2", "k3"):
        inner.put(key, b"x" * 40)
    cached.get("k1")
    cached.get("k2")
    assert cached.cached_bytes == 80
    cached.get("k3")  # 120 > 100: evict the LRU entry (k1)
    assert cached.cached_bytes == 80
    assert cached.cache_stats.evictions == 1
    before = inner.stats.snapshot()
    cached.get("k2")  # still cached
    cached.get("k3")  # still cached
    assert inner.stats.delta(before).gets == 0
    cached.get("k1")  # evicted: goes to the inner store again
    assert inner.stats.delta(before).gets == 1


def test_oversize_entries_served_but_not_admitted():
    inner, cached = _fresh_pair(budget_bytes=1000, max_entry_bytes=10)
    inner.put("big", b"x" * 50)
    assert cached.get("big") == b"x" * 50
    assert cached.cached_bytes == 0
    assert cached.cache_stats.rejected == 1
    before = inner.stats.snapshot()
    assert cached.get("big") == b"x" * 50  # miss again, by design
    assert inner.stats.delta(before).gets == 1


def test_whole_object_serves_byte_ranges():
    inner, cached = _fresh_pair()
    inner.put("k", b"0123456789")
    cached.get("k")  # caches the whole object
    before = inner.stats.snapshot()
    assert cached.get("k", (2, 3)) == b"234"
    assert cached.get("k", (0, 10)) == b"0123456789"
    assert inner.stats.delta(before).gets == 0  # both served from cache
    with pytest.raises(InvalidByteRange):
        cached.get("k", (5, 99))  # out of bounds still errors


def test_metadata_caching_and_prefix_invalidation():
    inner, cached = _fresh_pair()
    inner.put("b/x", b"1")
    inner.put("b/y", b"22")
    assert [i.key for i in cached.list("b/")] == ["b/x", "b/y"]
    cached.head("b/x")
    before = inner.stats.snapshot()
    cached.list("b/")
    cached.head("b/x")
    delta = inner.stats.delta(before)
    assert delta.lists == 0 and delta.heads == 0  # cached
    cached.put("b/z", b"333")  # covered by the "b/" prefix
    assert [i.key for i in cached.list("b/")] == ["b/x", "b/y", "b/z"]


def test_hit_miss_counters():
    inner, cached = _fresh_pair()
    inner.put("k", b"v")
    cached.get("k")
    cached.get("k")
    cached.get("k")
    assert cached.cache_stats.misses == 1
    assert cached.cache_stats.hits == 2
    assert cached.cache_stats.hit_rate == pytest.approx(2 / 3)


def test_budget_validation():
    inner = InMemoryObjectStore(clock=SimClock())
    with pytest.raises(ValueError):
        CachingObjectStore(inner, budget_bytes=0)


# -- single-flight misses --------------------------------------------


class _GatedStore(InMemoryObjectStore):
    """GETs block until released, so concurrent misses pile up."""

    def __init__(self):
        super().__init__(clock=SimClock())
        self.gate = threading.Event()
        self.get_started = threading.Event()

    def get(self, key, byte_range=None):
        self.get_started.set()
        assert self.gate.wait(timeout=5)
        return super().get(key, byte_range)


def test_concurrent_identical_gets_share_one_fetch():
    inner = _GatedStore()
    cached = CachingObjectStore(inner)
    inner._objects["k"] = (b"v", 0.0)  # seed without a billed PUT
    results = []

    def reader():
        results.append(cached.get("k"))

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    assert inner.get_started.wait(timeout=5)
    inner.gate.set()
    for t in threads:
        t.join(timeout=5)
    assert results == [b"v"] * 4
    assert inner.stats.gets == 1  # one flight served all four callers
    assert cached._flights.shared == 3


def test_stacks_with_retrying_store():
    """The cache implements the same ABC as RetryingObjectStore, so the
    two wrappers compose in either order."""
    inner = InMemoryObjectStore(clock=SimClock())
    stack = CachingObjectStore(RetryingObjectStore(inner))
    stack.put("k", b"v")
    assert stack.get("k") == b"v"
    assert inner.get("k") == b"v"
    other = RetryingObjectStore(CachingObjectStore(inner))
    assert other.get("k") == b"v"

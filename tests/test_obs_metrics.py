"""Metrics registry: counters, gauges, histograms, exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_labels(self, registry):
        c = registry.counter("ops_total", "ops", ("op",))
        c.inc(op="GET")
        c.inc(2, op="GET")
        c.inc(op="PUT")
        assert c.value(op="GET") == 3
        assert c.value(op="PUT") == 1
        assert c.value(op="LIST") == 0
        assert c.total() == 4

    def test_unlabeled(self, registry):
        c = registry.counter("plain_total", "plain")
        c.inc()
        c.inc(5)
        assert c.value() == 6

    def test_negative_rejected(self, registry):
        c = registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_unknown_label_rejected(self, registry):
        c = registry.counter("y_total", "y", ("op",))
        with pytest.raises(ValueError):
            c.inc(direction="up")

    def test_thread_safe_increments(self, registry):
        c = registry.counter("race_total", "race", ("who",))

        def bump() -> None:
            for _ in range(1000):
                c.inc(who="t")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(who="t") == 8000


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("bytes", "bytes held")
        g.set(100)
        g.add(20)
        g.add(-50)
        assert g.value() == 70

    def test_labeled(self, registry):
        g = registry.gauge("pool", "per pool", ("pool",))
        g.set(3, pool="a")
        g.set(5, pool="b")
        assert g.value(pool="a") == 3
        assert g.value(pool="b") == 5


class TestHistogram:
    def test_observe_and_snapshot(self, registry):
        h = registry.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        # Cumulative bucket counts, +Inf last.
        assert snap["buckets"]["0.1"] == 1
        assert snap["buckets"]["1"] == 3
        assert snap["buckets"]["10"] == 4
        assert snap["buckets"]["+Inf"] == 5

    def test_default_latency_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(
            DEFAULT_LATENCY_BUCKETS_S
        )


class TestRegistry:
    def test_get_or_create_idempotent(self, registry):
        a = registry.counter("same_total", "same", ("op",))
        b = registry.counter("same_total", "same", ("op",))
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("thing", "thing")
        with pytest.raises(ValueError):
            registry.gauge("thing", "thing")

    def test_label_mismatch_raises(self, registry):
        registry.counter("lbl_total", "lbl", ("op",))
        with pytest.raises(ValueError):
            registry.counter("lbl_total", "lbl", ("direction",))

    def test_get(self, registry):
        c = registry.counter("found_total", "found")
        assert registry.get("found_total") is c
        assert registry.get("missing") is None

    def test_snapshot_and_render(self, registry):
        registry.counter("a_total", "a docs", ("op",)).inc(op="GET")
        registry.gauge("b_gauge", "b docs").set(7)
        registry.histogram("c_hist", "c docs", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["a_total"]["series"] == {'op="GET"': 1}
        assert snap["b_gauge"]["series"] == {"": 7}
        text = registry.render()
        assert '# HELP a_total a docs' in text
        assert 'a_total{op="GET"} 1' in text
        assert "b_gauge 7" in text
        assert "c_hist_count 1" in text

    def test_global_registry_is_process_wide(self):
        assert get_registry() is get_registry()

    def test_render_escapes_help_and_label_values(self, registry):
        registry.counter(
            "weird_total", 'docs with \\ backslash\nand newline', ("path",)
        ).inc(path='a\\b"c\nd')
        text = registry.render()
        assert (
            "# HELP weird_total docs with \\\\ backslash\\nand newline"
            in text
        )
        assert 'weird_total{path="a\\\\b\\"c\\nd"} 1' in text
        # The escaped exposition stays one-line-per-sample parseable.
        assert all(
            line.startswith(("#", "weird_total")) for line in text.splitlines()
        )

    def test_render_labeled_histogram_conformance(self, registry):
        h = registry.histogram(
            "req_latency", "by op", ("op",), buckets=(0.1, 1.0)
        )
        for v in (0.05, 0.5, 5.0):
            h.observe(v, op="GET")
        text = registry.render()
        lines = [l for l in text.splitlines() if l.startswith("req_latency")]
        assert 'req_latency_bucket{op="GET",le="0.1"} 1' in lines
        assert 'req_latency_bucket{op="GET",le="1"} 2' in lines
        assert 'req_latency_bucket{op="GET",le="+Inf"} 3' in lines
        assert 'req_latency_sum{op="GET"} 5.55' in lines
        assert 'req_latency_count{op="GET"} 3' in lines
        # Buckets are cumulative and +Inf renders last of the buckets.
        buckets = [l for l in lines if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].endswith('le="+Inf"} 3')

    def test_instrumented_store_reports(self, store):
        before = get_registry().counter(
            "store_requests_total", "Object-store requests by operation", ("op",)
        ).value(op="PUT")
        store.put("k", b"abc")
        store.get("k")
        after = get_registry().get("store_requests_total")
        assert after.value(op="PUT") == before + 1

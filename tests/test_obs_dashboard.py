"""The self-contained HTML dashboard and the measured TCO fold."""

from __future__ import annotations

import pytest

from repro.obs.dashboard import (
    comparison_approaches,
    measured_deployment,
    measured_phase_diagram,
    render_dashboard,
    write_dashboard,
)
from repro.obs.slo import default_slo
from repro.obs.timeseries import TelemetryHub
from repro.storage.costs import CostModel


def _populated_hub(queries: int = 120) -> TelemetryHub:
    hub = TelemetryHub()
    for i in range(queries):
        at_s = i * 2.0  # spread over several 60s windows
        latency = 0.1 if i % 20 else 0.8  # a slow straggler every 20th
        hub.quantiles("serve.latency_s").observe(latency, at_s=at_s)
        hub.series("serve.queries").observe(1.0, at_s=at_s)
        hub.series("serve.cost_usd").observe(2e-6, at_s=at_s)
        hub.ledger.record_query(1e-6, 1e-6, at_s=at_s)
        hub.tail.record(
            latency,
            at_s=at_s,
            query="serve.query",
            phase_s={
                "index_probe": 0.08,
                "page_read": latency - 0.08,
            },
        )
    hub.ledger.record_maintain("index", 1e-4, 2e-5, at_s=0.0)
    hub.ledger.record_maintain("compact", 1e-5, 0.0, at_s=100.0)
    hub.ledger.set_storage(data_bytes=10 << 20, index_bytes=1 << 20)
    return hub


class TestMeasuredDeployment:
    def test_none_until_a_query_is_billed(self):
        assert measured_deployment(TelemetryHub()) is None

    def test_ledger_fold(self):
        hub = _populated_hub()
        measured = measured_deployment(hub)
        assert measured is not None
        a = measured.approach
        assert a.name == "measured"
        assert a.cost_per_query == pytest.approx(
            hub.ledger.serve_usd / hub.ledger.serve_queries
        )
        assert a.index_cost == pytest.approx(hub.ledger.index_build_usd)
        # Monthly = storage of data+index bytes + amortized maintenance.
        costs = CostModel()
        storage = costs.storage_monthly((10 << 20) + (1 << 20))
        assert a.cost_per_month > storage
        assert measured.queries == 120
        assert measured.months > 0
        # Trajectory is cumulative and ends at the full query count.
        assert measured.trajectory[-1][1] == 120
        counts = [q for _, q in measured.trajectory]
        assert counts == sorted(counts)
        assert measured.tco_usd > 0

    def test_phase_diagram_includes_measured_position(self):
        hub = _populated_hub()
        measured = measured_deployment(hub)
        rivals = comparison_approaches(hub)
        assert [r.name for r in rivals] == ["copy-data", "brute-force"]
        diagram = measured_phase_diagram(measured, rivals, resolution=16)
        assert diagram.months[0] <= measured.months <= diagram.months[-1]
        assert diagram.queries[0] <= measured.queries <= diagram.queries[-1]
        winner = diagram.winner_at(measured.months, measured.queries)
        assert winner.name in {"copy-data", "brute-force", "measured"}


class TestRenderDashboard:
    def test_contains_every_section(self):
        hub = _populated_hub()
        doc = render_dashboard(hub, source="unit-test")
        assert doc.startswith("<!DOCTYPE html>")
        for heading in (
            "Windowed latency percentiles",
            "Query rate",
            "Tail attribution",
            "SLO status",
            "Measured TCO position",
        ):
            assert heading in doc
        # Windowed percentiles + the tail table + the measured marker.
        assert "p50" in doc and "p99" in doc
        assert "amplification" in doc
        assert "you are here" in doc
        assert "unit-test" in doc
        # SLO verdicts ship icon + label, never color alone.
        assert "&#10003;" in doc

    def test_self_contained(self):
        doc = render_dashboard(_populated_hub())
        # Single file: inline CSS + SVG, no scripts, no external fetches.
        assert "<script" not in doc
        assert "http://" not in doc and "https://" not in doc
        assert "<link" not in doc and "src=" not in doc
        assert "<svg" in doc and "<style>" in doc

    def test_breach_renders_breach_badge(self):
        doc = render_dashboard(
            _populated_hub(), slo=default_slo(latency_p99_s=1e-4)
        )
        assert "&#10007;" in doc
        assert "SLO breached" in doc

    def test_empty_hub_renders_placeholders(self):
        doc = render_dashboard(TelemetryHub())
        assert "no latency observations yet" in doc
        assert "no billed queries yet" in doc
        assert "no phase-tagged query samples yet" in doc

    def test_ingest_panel_only_with_ingest_telemetry(self):
        # Lake-only hubs skip the panel instead of rendering an empty box.
        assert "Real-time ingest freshness" not in render_dashboard(
            _populated_hub()
        )
        hub = _populated_hub()
        for i, lag in enumerate((12.0, 15.0, 19.0)):
            hub.quantiles("ingest.freshness_lag_s").observe(
                lag, at_s=100.0 + 70.0 * i
            )
        hub.series("ingest.drains").observe(1.0, at_s=240.0)
        hub.series("ingest.drained_rows").observe(72.0, at_s=240.0)
        hub.series("ingest.fresh_matches").observe(3.0, at_s=50.0)
        doc = render_dashboard(hub)
        assert "Real-time ingest freshness" in doc
        assert "freshness lag p99" in doc
        assert "rows drained" in doc
        assert "freshness lag (s)" in doc  # the windowed chart rendered

    def test_write_dashboard(self, tmp_path):
        path = str(tmp_path / "dash.html")
        assert write_dashboard(path, _populated_hub()) == path
        with open(path) as f:
            assert "Rottnest deployment dashboard" in f.read()

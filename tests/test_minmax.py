"""Min-max zone maps + RangeQuery: the §II-B useful/useless contrast."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import RottnestClient
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.core.queries import RangeQuery
from repro.errors import RottnestIndexError, TCOError
from repro.formats.page_reader import PageEntry, PageTable
from repro.formats.schema import ColumnType, Field, Schema
from repro.indices.minmax import MinMaxBuilder, MinMaxQuerier
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock


def store_minmax(builder, n_pages, **write_kwargs):
    table = PageTable(
        "f.parquet",
        "c",
        [
            PageEntry("f.parquet", i, 4 + i * 100, 100, 10, i * 10, 1)
            for i in range(n_pages)
        ],
    )
    w = IndexFileWriter("minmax", "c", PageDirectory([table]))
    builder.write(w, **write_kwargs)
    store = InMemoryObjectStore()
    store.put("z.index", w.finish())
    return store, MinMaxQuerier(IndexFileReader.open(store, "z.index"))


class TestRangeQuery:
    def test_matches(self):
        q = RangeQuery(10, 20)
        assert q.matches(10) and q.matches(20) and q.matches(15)
        assert not q.matches(9) and not q.matches(21)

    def test_bytes_range(self):
        q = RangeQuery(b"\x10", b"\x20")
        assert q.matches(bytearray(b"\x15"))
        assert not q.matches(b"\x21")

    def test_empty_range_rejected(self):
        with pytest.raises(TCOError):
            RangeQuery(5, 4)

    def test_mixed_types_rejected(self):
        with pytest.raises(TCOError):
            RangeQuery(1, "two")

    def test_probe_is_tuple(self):
        assert RangeQuery(1, 2).index_probe() == (1, 2)


class TestMinMaxBuilder:
    def test_int_pruning_on_sorted_data(self):
        # Pages of 10 consecutive ints: a point probe hits one page.
        pages = [(g, list(range(g * 10, (g + 1) * 10))) for g in range(20)]
        builder = MinMaxBuilder.build(pages)
        _, q = store_minmax(builder, 20)
        assert q.candidate_pages(57) == [5]
        assert q.candidate_pages((25, 44)) == [2, 3, 4]
        assert q.candidate_pages(999) == []

    def test_random_binary_prunes_nothing(self):
        """§II-B: min-max is useless on high-cardinality random keys."""
        pages = [
            (g, [hashlib.sha256(f"{g}:{i}".encode()).digest()[:16]
                 for i in range(50)])
            for g in range(10)
        ]
        builder = MinMaxBuilder.build(pages)
        _, q = store_minmax(builder, 10)
        probe = hashlib.sha256(b"probe").digest()[:16]
        assert len(q.candidate_pages(probe)) >= 9  # ~no pruning

    def test_string_zone_map(self):
        pages = [(0, ["apple", "axe"]), (1, ["bat", "cat"]), (2, ["dog", "elk"])]
        builder = MinMaxBuilder.build(pages)
        _, q = store_minmax(builder, 3)
        assert q.candidate_pages("apricot") == [0]
        assert q.candidate_pages("bunny") == [1]
        assert q.candidate_pages("banana") == []  # falls between pages
        assert q.candidate_pages(("a", "c")) == [0, 1]

    def test_type_errors(self):
        with pytest.raises(RottnestIndexError):
            MinMaxBuilder.build([])
        with pytest.raises(RottnestIndexError):
            MinMaxBuilder.build([(0, [])])
        with pytest.raises(RottnestIndexError):
            MinMaxBuilder.build([(0, [1.5])])
        with pytest.raises(RottnestIndexError):
            MinMaxBuilder.build([(0, [1]), (1, ["s"])])

    def test_probe_type_checked(self):
        builder = MinMaxBuilder.build([(0, [1, 2, 3])])
        _, q = store_minmax(builder, 1)
        with pytest.raises(RottnestIndexError):
            q.candidate_pages("string")

    def test_load_roundtrip(self):
        pages = [(g, list(range(g * 5, g * 5 + 5))) for g in range(6)]
        builder = MinMaxBuilder.build(pages)
        _, q = store_minmax(builder, 6, component_target_bytes=32)
        loaded = MinMaxBuilder.load(q.reader)
        assert loaded.tag == builder.tag
        assert loaded.entries == builder.entries

    def test_merge_shifts(self):
        b1 = MinMaxBuilder.build([(0, [1, 2]), (1, [10, 11])])
        b2 = MinMaxBuilder.build([(0, [100, 120])])
        merged = MinMaxBuilder.merge([b1, b2], [0, 2])
        _, q = store_minmax(merged, 3)
        assert q.candidate_pages(110) == [2]
        assert q.candidate_pages(2) == [0]

    def test_merge_mixed_tags_rejected(self):
        b1 = MinMaxBuilder.build([(0, [1])])
        b2 = MinMaxBuilder.build([(0, ["s"])])
        with pytest.raises(RottnestIndexError):
            MinMaxBuilder.merge([b1, b2], [0, 1])

    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=60),
        st.integers(-1000, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives_property(self, values, probe):
        pages = [
            (g, values[g * 10 : (g + 1) * 10])
            for g in range(-(-len(values) // 10))
        ]
        builder = MinMaxBuilder.build(pages)
        _, q = store_minmax(builder, len(pages))
        hits = set(q.candidate_pages(probe))
        for g, page_values in pages:
            if probe in page_values:
                assert g in hits


class TestMinMaxThroughClient:
    @pytest.fixture
    def timeline(self):
        """A timestamped table, naturally sorted by ts."""
        store = InMemoryObjectStore(clock=SimClock())
        schema = Schema.of(
            Field("ts", ColumnType.INT64), Field("msg", ColumnType.STRING)
        )
        lake = LakeTable.create(
            store, "lake/tl", schema,
            TableConfig(row_group_rows=100, page_target_bytes=700),
        )
        for day in range(4):
            base = day * 1000
            lake.append(
                {
                    "ts": list(range(base, base + 500)),
                    "msg": [f"event at {base + i}" for i in range(500)],
                }
            )
        client = RottnestClient(store, "idx/tl", lake)
        client.index("ts", "minmax")
        return store, lake, client

    def test_range_query_end_to_end(self, timeline):
        _, _, client = timeline
        res = client.search("ts", RangeQuery(1100, 1120), k=100)
        assert sorted(m.value for m in res.matches) == list(range(1100, 1121))
        assert res.stats.files_brute_forced == 0

    def test_range_probes_few_pages(self, timeline):
        store, lake, client = timeline
        narrow = client.search("ts", RangeQuery(2000, 2004), k=100)
        wide = client.search("ts", RangeQuery(0, 3499), k=10_000)
        assert narrow.stats.pages_probed < wide.stats.pages_probed / 5
        assert len(wide.matches) == 2000

    def test_empty_range_result(self, timeline):
        _, _, client = timeline
        res = client.search("ts", RangeQuery(10_000, 10_100), k=10)
        assert res.matches == []

    def test_deleted_rows_respected(self, timeline):
        _, lake, client = timeline
        lake.delete_where("ts", lambda v: v == 1105)
        res = client.search("ts", RangeQuery(1100, 1110), k=100)
        assert 1105 not in [m.value for m in res.matches]

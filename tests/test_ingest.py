"""Tests for the real-time ingest tier (``repro.ingest``).

The load-bearing claims, bottom-up: the WAL frames batches durably and
detects corruption; memtables answer every workload's queries exactly;
``ingest()``'s ack means *searchable now* — before any index or
compaction run, from plain clients, the executor, a server, and a
sharded router; recovery replays the WAL into an identical tier; and
the drainer's handoff is exactly-once at every boundary (no row
dropped, none double-counted, byte-identical re-runs).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.client import RottnestClient
from repro.core.queries import SubstringQuery, UuidQuery, VectorQuery
from repro.errors import IngestError, WalCorruption
from repro.ingest import IngestDrainer, IngestTier, Memtable, WriteAheadLog
from repro.lake.table import LakeTable, TableConfig
from repro.maintain import MaintenancePipeline
from repro.obs.timeseries import TelemetryHub, use_hub
from repro.serve.executor import SearchExecutor
from repro.serve.server import SearchServer
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch, event_uuid

LAKE_ROOT = "lake/events"
INGEST_ROOT = "ingest/events"
INDEX_DIR = "idx/events"


def _setup(warm_files: int = 1, index: bool = False):
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(
        store,
        LAKE_ROOT,
        EVENT_SCHEMA,
        TableConfig(row_group_rows=64, page_target_bytes=4096),
    )
    for i in range(warm_files):
        lake.append(event_batch(40, seed=i + 1))
    client = RottnestClient(store, INDEX_DIR, lake)
    if index and warm_files:
        client.index("uuid", "uuid_trie")
    tier = IngestTier(store, INGEST_ROOT, lake)
    client.fresh_tier = tier
    return store, lake, client, tier


def _vector_query(lake, seed: int = 3) -> VectorQuery:
    rng = np.random.default_rng(seed)
    total = sum(f.num_rows for f in lake.snapshot().files) + 10_000
    return VectorQuery(
        rng.normal(size=16).astype(np.float32), nprobe=4, refine=total
    )


# ---------------------------------------------------------------------
# write-ahead log
# ---------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_read_roundtrip_is_canonical(self):
        store, lake, client, tier = _setup()
        wal = WriteAheadLog(store, "ingest/other", EVENT_SCHEMA)
        batch = event_batch(8, seed=5)
        canonical = wal.append(0, batch)
        replayed = wal.read(0)
        assert replayed["uuid"] == canonical["uuid"]
        assert replayed["text"] == canonical["text"]
        assert all(
            np.array_equal(a, b)
            for a, b in zip(replayed["emb"], canonical["emb"])
        )
        assert canonical["uuid"] == [bytes(u) for u in batch["uuid"]]
        assert np.array_equal(
            canonical["emb"][0], np.asarray(batch["emb"][0], dtype=np.float32)
        )

    def test_corrupt_frame_raises(self):
        store, lake, client, tier = _setup()
        wal = WriteAheadLog(store, "ingest/other", EVENT_SCHEMA)
        wal.append(0, event_batch(4, seed=5))
        key = wal.segment_key(0)
        data = bytearray(store.get(key))
        data[-1] ^= 0xFF
        store.put(key, bytes(data))
        with pytest.raises(WalCorruption):
            wal.read(0)

    def test_bad_magic_raises(self):
        store, lake, client, tier = _setup()
        wal = WriteAheadLog(store, "ingest/other", EVENT_SCHEMA)
        store.put(wal.segment_key(0), b"NOTAWAL!")
        with pytest.raises(WalCorruption):
            wal.read(0)

    def test_truncate_removes_segment_and_seal(self):
        store, lake, client, tier = _setup()
        wal = WriteAheadLog(store, "ingest/other", EVENT_SCHEMA)
        wal.append(0, event_batch(4, seed=5))
        wal.seal(0)
        assert wal.segments() == [0]
        assert wal.sealed() == {0}
        wal.truncate(0)
        assert wal.segments() == []
        assert wal.sealed() == set()
        wal.truncate(0)  # idempotent on a missing key

    def test_missing_column_rejected(self):
        store, lake, client, tier = _setup()
        wal = WriteAheadLog(store, "ingest/other", EVENT_SCHEMA)
        with pytest.raises(IngestError):
            wal.append(0, {"uuid": [b"\x00" * 16]})

    def test_ragged_batch_rejected(self):
        store, lake, client, tier = _setup()
        wal = WriteAheadLog(store, "ingest/other", EVENT_SCHEMA)
        batch = event_batch(4, seed=5)
        batch["text"] = batch["text"][:2]
        with pytest.raises(IngestError):
            wal.append(0, batch)


# ---------------------------------------------------------------------
# memtable
# ---------------------------------------------------------------------
class TestMemtable:
    def _table(self, n: int = 20, seed: int = 5) -> Memtable:
        table = Memtable(0, "ingest/events/wal/0.seg", EVENT_SCHEMA)
        wal = WriteAheadLog(
            InMemoryObjectStore(), "ingest/events", EVENT_SCHEMA
        )
        table.insert(wal.append(0, event_batch(n, seed=seed)))
        return table

    def test_substring_any_offset_and_long_needles(self):
        table = self._table()
        docs = table.columns["text"]
        for doc in docs[:3]:
            # Needles crossing the trie depth still verify exactly.
            for needle in (doc[:4], doc[2:14], doc[len(doc) // 2 :][:12]):
                rows = {
                    m.row for m in table.search("text", SubstringQuery(needle))
                }
                assert rows == {
                    i for i, d in enumerate(docs) if needle in d
                }, needle

    def test_absent_substring_finds_nothing(self):
        table = self._table()
        assert table.search("text", SubstringQuery("impossible-needle")) == []

    def test_uuid_exact(self):
        table = self._table(seed=6)
        target = table.columns["uuid"][7]
        matches = table.search("uuid", UuidQuery(target))
        assert [m.row for m in matches] == [
            i for i, u in enumerate(table.columns["uuid"]) if u == target
        ]
        assert table.search("uuid", UuidQuery(b"\x00" * 16)) == []

    def test_vector_scores_match_query_distance_bit_for_bit(self):
        table = self._table(seed=7)
        query = VectorQuery(
            np.random.default_rng(0).normal(size=16).astype(np.float32),
            nprobe=1,
            refine=100,
        )
        matches = table.search("emb", query)
        assert len(matches) == table.num_rows
        for m in matches:
            buffer_row = np.asarray(
                table.columns["emb"][m.row], dtype=np.float32
            )
            assert m.score == query.distance(buffer_row)


# ---------------------------------------------------------------------
# the ack contract: acked == searchable, before any maintenance
# ---------------------------------------------------------------------
class TestFreshnessInvariant:
    def test_acked_rows_searchable_before_any_index_run(self):
        store, lake, client, tier = _setup(warm_files=0)
        batch = event_batch(30, seed=9)
        tier.ingest(batch)
        r = client.search("uuid", UuidQuery(event_uuid(9, 3)), k=10)
        assert len(r.matches) == 1
        assert r.matches[0].file.startswith(tier.wal.prefix)
        r = client.search("text", SubstringQuery(batch["text"][0][:8]), k=100)
        assert any(m.file.startswith(tier.wal.prefix) for m in r.matches)
        r = client.search("emb", _vector_query(lake), k=5)
        assert len(r.matches) == 5
        assert all(m.file.startswith(tier.wal.prefix) for m in r.matches)

    def test_fresh_and_lazy_merge_in_one_result(self):
        store, lake, client, tier = _setup(warm_files=1, index=True)
        tier.ingest(event_batch(30, seed=9))
        # Exact: one hit per tier for distinct keys.
        fresh = client.search("uuid", UuidQuery(event_uuid(9, 0)), k=10)
        lazy = client.search("uuid", UuidQuery(event_uuid(1, 0)), k=10)
        assert fresh.matches[0].file.startswith(tier.wal.prefix)
        assert not lazy.matches[0].file.startswith(tier.wal.prefix)
        # Scoring: global top-k equals the brute-force union.
        query = _vector_query(lake)
        merged = client.search("emb", query, k=7)
        oracle = client.search("emb", query, k=7, use_indices=False)
        assert [m.score for m in merged.matches] == [
            m.score for m in oracle.matches
        ]

    def test_partition_scoping_skips_the_fresh_tier(self):
        store, lake, client, tier = _setup(warm_files=1)
        tier.ingest(event_batch(10, seed=9))
        r = client.search(
            "uuid", UuidQuery(event_uuid(9, 0)), k=10, partition="nope"
        )
        assert r.matches == []

    def test_executor_and_plain_client_agree(self):
        store, lake, client, tier = _setup(warm_files=1, index=True)
        tier.ingest(event_batch(30, seed=9))
        query = _vector_query(lake)
        plain = client.search("emb", query, k=5)
        with SearchExecutor(client, max_searchers=4) as ex:
            pooled = ex.search("emb", query, k=5)
            fresh = ex.search("uuid", UuidQuery(event_uuid(9, 4)), k=10)
        assert [m.score for m in pooled.matches] == [
            m.score for m in plain.matches
        ]
        assert fresh.matches[0].file.startswith(tier.wal.prefix)

    def test_server_counts_fresh_matches(self):
        store, lake, client, tier = _setup(warm_files=1, index=True)
        tier.ingest(event_batch(30, seed=9))
        hub = TelemetryHub()
        with use_hub(hub):
            with SearchServer(client, max_searchers=2) as server:
                result = server.query("uuid", UuidQuery(event_uuid(9, 2)), k=10)
                assert len(result.matches) == 1
                assert server.stats.fresh_matches == 1
        assert hub.series("ingest.fresh_matches").count() == 1

    def test_sharded_router_merges_the_fresh_tier(self):
        from repro.shard import QueryRouter, ShardPlan

        store, lake, client, tier = _setup(warm_files=2)
        tier.ingest(event_batch(30, seed=9))
        with use_hub(TelemetryHub()):
            deployment = ShardPlan(n_shards=2).materialize(
                lake, "uuid", indexes=[("uuid", "uuid_trie", {})]
            )
            with deployment, QueryRouter(
                deployment, hedge=None, fresh_tier=tier
            ) as router:
                fresh = router.query("uuid", UuidQuery(event_uuid(9, 1)), k=10)
                lazy = router.query("uuid", UuidQuery(event_uuid(1, 1)), k=10)
                assert len(fresh.matches) == 1
                assert fresh.matches[0].file.startswith(tier.wal.prefix)
                assert len(lazy.matches) == 1

    def test_empty_batch_rejected(self):
        store, lake, client, tier = _setup(warm_files=0)
        with pytest.raises(IngestError):
            tier.ingest({name: [] for name in EVENT_SCHEMA.names})
        # A rejected batch is refused *before* anything durable: no WAL
        # segment to replay into a zero-row lake file, no seq consumed.
        assert tier.wal.segments() == []
        assert tier.ingest(event_batch(5, seed=1)) == 0

    def test_router_serves_rows_drained_after_materialization(self):
        from repro.shard import QueryRouter, ShardPlan

        store, lake, client, tier = _setup(warm_files=2)
        tier.ingest(event_batch(30, seed=9))
        with use_hub(TelemetryHub()):
            deployment = ShardPlan(n_shards=2).materialize(
                lake, "uuid", indexes=[("uuid", "uuid_trie", {})]
            )
            with deployment, QueryRouter(
                deployment, hedge=None, fresh_tier=tier
            ) as router:
                # Drain AFTER materialization: the rows move into the
                # source lake (current floor advances) but exist on no
                # shard — the router's pinned probe must keep serving
                # them fresh, and its lease must keep them alive.
                report = IngestDrainer(tier).drain()
                assert report.segments == [0]
                r = router.query("uuid", UuidQuery(event_uuid(9, 1)), k=10)
                assert len(r.matches) == 1
                assert r.matches[0].file.startswith(tier.wal.prefix)
                # Pre-materialization rows still come from the shards.
                lazy = router.query("uuid", UuidQuery(event_uuid(1, 1)), k=10)
                assert len(lazy.matches) == 1
                assert not lazy.matches[0].file.startswith(tier.wal.prefix)
            # close() released the lease: the next drain cleans up.
            assert IngestDrainer(tier).drain().empty
        assert tier.wal.segments() == []
        assert tier.pending_rows() == 0


# ---------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------
class TestRecovery:
    def test_replay_rebuilds_an_identical_tier(self):
        store, lake, client, tier = _setup(warm_files=0)
        batch = event_batch(30, seed=9)
        tier.ingest(batch)
        tier.ingest(event_batch(20, seed=10))
        rebuilt = IngestTier(store, INGEST_ROOT, lake)
        for column, query, k in [
            ("uuid", UuidQuery(event_uuid(9, 3)), 10),
            ("text", SubstringQuery(batch["text"][2][:8]), 1000),
            ("emb", _vector_query(lake), 9),
        ]:
            live = tier.search_fresh(column, query, k=k)
            replayed = rebuilt.search_fresh(column, query, k=k)
            assert [(m.file, m.row, m.score) for m in live] == [
                (m.file, m.row, m.score) for m in replayed
            ]

    def test_sequence_numbers_stay_monotonic_after_recovery(self):
        store, lake, client, tier = _setup(warm_files=0)
        assert tier.ingest(event_batch(5, seed=1)) == 0
        assert tier.ingest(event_batch(5, seed=2)) == 1
        rebuilt = IngestTier(store, INGEST_ROOT, lake)
        assert rebuilt.ingest(event_batch(5, seed=3)) == 2

    def test_recover_reports_replayed_segment_count(self):
        store, lake, client, tier = _setup(warm_files=0)
        tier.ingest(event_batch(5, seed=1))
        tier.ingest(event_batch(5, seed=2))
        assert tier.recover() == 2


# ---------------------------------------------------------------------
# the drain handoff
# ---------------------------------------------------------------------
class TestDrain:
    def _drained(self, index_specs=()):
        store, lake, client, tier = _setup(warm_files=1, index=True)
        tier.ingest(event_batch(30, seed=9))
        tier.ingest(event_batch(20, seed=10))
        store.clock.advance(7.0)
        hub = TelemetryHub()
        with use_hub(hub):
            with MaintenancePipeline(client, workers=2) as pipe:
                drainer = IngestDrainer(
                    tier, pipeline=pipe, index_specs=index_specs
                )
                report = drainer.drain()
        return store, lake, client, tier, hub, report

    def test_drain_moves_rows_exactly_once(self):
        store, lake, client, tier, hub, report = self._drained()
        assert report.segments == [0, 1]
        assert report.rows == 50
        assert tier.pending_rows() == 0
        assert tier.wal.segments() == []
        # The row is still found — now from the lake, exactly once.
        r = client.search("uuid", UuidQuery(event_uuid(9, 3)), k=10)
        assert len(r.matches) == 1
        assert not r.matches[0].file.startswith(tier.wal.prefix)

    def test_redrain_is_a_noop(self):
        store, lake, client, tier, hub, report = self._drained()
        with use_hub(TelemetryHub()):
            again = IngestDrainer(tier).drain()
        assert again.empty
        assert lake.snapshot().app_versions[tier.app_id] == 1

    def test_freshness_lag_measured_on_the_store_clock(self):
        store, lake, client, tier, hub, report = self._drained()
        assert report.freshness_lag_s[1] == pytest.approx(7.0)
        assert report.freshness_lag_s[0] >= report.freshness_lag_s[1]
        sketch = hub.quantiles("ingest.freshness_lag_s").merged()
        assert sketch.count == 2

    def test_drain_index_stage_covers_the_flushed_file(self):
        store, lake, client, tier, hub, report = self._drained(
            index_specs=[("uuid", "uuid_trie", {})]
        )
        assert report.data_files and report.index_records
        covered = set().union(
            *(r.covered_files for r in client.meta.records())
        )
        assert set(report.data_files) <= covered

    def test_flush_key_and_bytes_are_deterministic(self):
        store, lake, client, tier = _setup(warm_files=1)
        tier.ingest(event_batch(30, seed=9))
        dumps = []
        for _ in range(2):
            clone = store.clone()
            clone_lake = LakeTable.open(clone, LAKE_ROOT, lake.config)
            clone_tier = IngestTier(clone, INGEST_ROOT, clone_lake)
            with use_hub(TelemetryHub()):
                IngestDrainer(clone_tier).drain()
            dumps.append(clone.dump())
        assert dumps[0] == dumps[1]

    def test_crash_between_commit_and_truncate_never_duplicates(self):
        store, lake, client, tier = _setup(warm_files=1)
        tier.ingest(event_batch(30, seed=9))
        faulty = FaultyObjectStore(store)
        faulty_lake = LakeTable.open(faulty, LAKE_ROOT, lake.config)
        faulty_tier = IngestTier(faulty, INGEST_ROOT, faulty_lake)
        faulty.crash_after("DELETE")  # dies at the first WAL truncation
        from repro.errors import SimulatedCrash

        with use_hub(TelemetryHub()):
            with pytest.raises(SimulatedCrash):
                IngestDrainer(faulty_tier).drain()
        # Committed but untruncated: the segment is at the floor, so the
        # fresh view already excludes it — exactly one match, from the lake.
        tier.recover()
        r = client.search("uuid", UuidQuery(event_uuid(9, 3)), k=10)
        assert len(r.matches) == 1
        assert not r.matches[0].file.startswith(tier.wal.prefix)
        # A later drain clears the leftover without a new commit.
        with use_hub(TelemetryHub()):
            report = IngestDrainer(IngestTier(store, INGEST_ROOT, lake)).drain()
        assert report.empty
        assert store.list("ingest/events/wal/") == []

    def test_concurrent_ingest_with_drains_never_loses_acked_rows(self):
        # Regression: the WAL PUT must happen under the tier lock so
        # durability is monotonic in seq. Otherwise a drain racing two
        # writers can commit floor=N while an acked seq<N PUT is still
        # in flight, stranding that batch below the floor forever.
        store, lake, client, tier = _setup(warm_files=0)
        acked: list[bytes] = []
        acked_lock = threading.Lock()

        def writer(worker: int) -> None:
            for i in range(4):
                seed = 100 + worker * 10 + i
                batch = event_batch(3, seed=seed)
                tier.ingest(batch)
                with acked_lock:
                    acked.append(batch["uuid"][0])

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        with use_hub(TelemetryHub()):
            for t in threads:
                t.start()
            for _ in range(5):  # drains race the writers (single drainer)
                IngestDrainer(tier).drain()
            for t in threads:
                t.join()
            IngestDrainer(tier).drain()
        assert len(acked) == 16
        assert tier.pending_rows() == 0
        for uuid in acked:
            r = client.search("uuid", UuidQuery(uuid), k=10)
            assert len(r.matches) == 1  # never dropped, never doubled

    def test_drain_interleaves_with_new_ingests(self):
        store, lake, client, tier, hub, report = self._drained()
        tier.ingest(event_batch(10, seed=11))
        r = client.search("uuid", UuidQuery(event_uuid(11, 0)), k=10)
        assert len(r.matches) == 1
        assert r.matches[0].file.startswith(tier.wal.prefix)
        with use_hub(TelemetryHub()):
            second = IngestDrainer(tier).drain()
        assert second.segments == [2]
        assert lake.snapshot().app_versions[tier.app_id] == 2

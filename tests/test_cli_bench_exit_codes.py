"""Exit-code contract of the bench subcommands.

Every modeled in-memory benchmark the CLI exposes follows one
convention: ``0`` when its acceptance gate holds, ``2`` on a gate
miss, ``3`` when there is nothing to benchmark (empty input), and
``1`` for any :class:`~repro.errors.ReproError`. These tests pin the
convention — it drifted once (maintain-bench and shard-bench shipped
without the empty-input exit) and the gate scripts in CI dispatch on
the code, so a silent change breaks the pipeline, not just the docs.
"""

from __future__ import annotations

import pytest

from repro.cli import main


class TestIngestBenchExitCodes:
    def test_gate_pass_is_zero(self, capsys):
        assert main(["ingest-bench", "--batches", "4", "--rows", "8"]) == 0
        assert "gate: ok" in capsys.readouterr().out

    def test_gate_miss_is_two(self, capsys):
        code = main(
            [
                "ingest-bench",
                "--batches", "4",
                "--rows", "8",
                "--max-lag-s", "0.001",
            ]
        )
        assert code == 2
        assert "MISSED" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["ingest-bench", "--batches", "0"],
            ["ingest-bench", "--rows", "0"],
        ],
    )
    def test_empty_input_is_three(self, argv, capsys):
        assert main(argv) == 3
        assert "empty input" in capsys.readouterr().err


class TestCrackBenchExitCodes:
    # Small-but-valid knobs: few files, few rows, short trace. The
    # defaults are tuned to pass, so the pass leg shrinks only mildly.
    SMALL = ["--files", "6", "--rows", "120", "--ticks", "6"]

    def test_gate_pass_is_zero(self, capsys):
        assert main(["crack-bench", *self.SMALL]) == 0
        assert "gate: ok" in capsys.readouterr().out

    def test_gate_miss_is_two(self, capsys):
        # An impossible p50 budget: cracked can never be 100x faster
        # than fully-eager on the same hot probes.
        code = main(["crack-bench", *self.SMALL, "--p50-budget", "0.01"])
        assert code == 2
        assert "MISSED" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["crack-bench", "--files", "0"],
            ["crack-bench", "--rows", "0"],
            ["crack-bench", "--ticks", "0"],
            ["crack-bench", "--queries", "0"],
        ],
    )
    def test_empty_input_is_three(self, argv, capsys):
        assert main(argv) == 3
        assert "empty input" in capsys.readouterr().err


class TestMaintainBenchExitCodes:
    def test_gate_miss_is_two(self, capsys):
        # A single-worker sweep can never clear the 2x speedup gate.
        code = main(
            ["maintain-bench", "--files", "4", "--rows", "8", "--workers", "1"]
        )
        assert code == 2

    @pytest.mark.parametrize(
        "argv",
        [
            ["maintain-bench", "--files", "0"],
            ["maintain-bench", "--rows", "0"],
        ],
    )
    def test_empty_input_is_three(self, argv, capsys):
        assert main(argv) == 3
        assert "empty input" in capsys.readouterr().err


class TestShardBenchExitCodes:
    def test_gate_miss_is_two(self, capsys):
        # A single-shard deployment cannot show the 4-shard flat-p50
        # shape the gate requires.
        code = main(
            [
                "shard-bench",
                "--files", "2",
                "--rows", "16",
                "--shards", "1",
                "--queries", "4",
            ]
        )
        assert code == 2

    @pytest.mark.parametrize(
        "argv",
        [
            ["shard-bench", "--files", "0"],
            ["shard-bench", "--rows", "0"],
            ["shard-bench", "--queries", "0"],
        ],
    )
    def test_empty_input_is_three(self, argv, capsys):
        assert main(argv) == 3
        assert "empty input" in capsys.readouterr().err

"""Holt-McMillan interleave merge and multi-string BWT primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RottnestIndexError
from repro.indices.fm.bwt import (
    bwt_from_sa,
    invert_multi_bwt,
    suffix_array,
)
from repro.indices.fm.fm_index import FmBuilder, page_text
from repro.indices.fm.merge import (
    MergeDidNotConverge,
    apply_interleave,
    merge_bwts,
    merged_bwt_and_sentinels,
)


def single_bwt(text: bytes):
    sa = suffix_array(text)
    return bwt_from_sa(text, sa)


class TestApplyInterleave:
    def test_weave(self):
        z = np.array([False, True, True, False])
        a = np.array([1, 2])
        b = np.array([10, 20])
        assert apply_interleave(z, a, b).tolist() == [1, 10, 20, 2]

    def test_length_mismatch(self):
        with pytest.raises(RottnestIndexError):
            apply_interleave(np.array([True]), np.array([1]), np.array([2]))


class TestMergeBwts:
    @pytest.mark.parametrize(
        "text_a,text_b",
        [
            (b"banana", b"ananas"),
            (b"aaa", b"aaa"),
            (b"abc", b"xyz"),
            (b"", b"hello"),
            (b"x", b""),
            (b"mississippi", b"mission"),
        ],
    )
    def test_merged_collection_inverts_to_both_texts(self, text_a, text_b):
        bwt_a, s_a = single_bwt(text_a)
        bwt_b, s_b = single_bwt(text_b)
        interleave, iterations = merge_bwts(bwt_a, [s_a], bwt_b, [s_b])
        merged, sentinels = merged_bwt_and_sentinels(
            interleave, bwt_a, [s_a], bwt_b, [s_b]
        )
        assert len(sentinels) == 2
        assert iterations >= 1
        texts = invert_multi_bwt(merged, sentinels)
        assert texts == [text_a, text_b]

    def test_interleave_counts_match_sources(self):
        bwt_a, s_a = single_bwt(b"hello world")
        bwt_b, s_b = single_bwt(b"goodbye")
        interleave, _ = merge_bwts(bwt_a, [s_a], bwt_b, [s_b])
        assert int((~interleave).sum()) == len(bwt_a)
        assert int(interleave.sum()) == len(bwt_b)

    def test_convergence_bound_enforced(self):
        bwt_a, s_a = single_bwt(b"aaaaaaaaaaaaaaaa")
        bwt_b, s_b = single_bwt(b"aaaaaaaaaaaaaaaa")
        with pytest.raises(MergeDidNotConverge):
            merge_bwts(bwt_a, [s_a], bwt_b, [s_b], max_iterations=2)

    @given(st.binary(max_size=60), st.binary(max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_merge_inverts_property(self, text_a, text_b):
        bwt_a, s_a = single_bwt(text_a)
        bwt_b, s_b = single_bwt(text_b)
        interleave, _ = merge_bwts(bwt_a, [s_a], bwt_b, [s_b])
        merged, sentinels = merged_bwt_and_sentinels(
            interleave, bwt_a, [s_a], bwt_b, [s_b]
        )
        assert invert_multi_bwt(merged, sentinels) == [text_a, text_b]


class TestMultiStringInversion:
    def test_three_way(self):
        """Merging a merged collection with a third text."""
        texts = [b"first text", b"second one", b"third"]
        bwt_a, s_a = single_bwt(texts[0])
        bwt_b, s_b = single_bwt(texts[1])
        z1, _ = merge_bwts(bwt_a, [s_a], bwt_b, [s_b])
        m1, sent1 = merged_bwt_and_sentinels(z1, bwt_a, [s_a], bwt_b, [s_b])
        bwt_c, s_c = single_bwt(texts[2])
        z2, _ = merge_bwts(m1, sent1, bwt_c, [s_c])
        m2, sent2 = merged_bwt_and_sentinels(z2, m1, sent1, bwt_c, [s_c])
        assert len(sent2) == 3
        assert invert_multi_bwt(m2, sent2) == texts

    def test_requires_sentinels(self):
        with pytest.raises(ValueError):
            invert_multi_bwt(b"\x00", [])


class TestBuilderInterleaveMerge:
    def test_chained_compaction_stays_correct(self):
        """Repeated interleave merges (as chained compactions produce)
        keep counting exact."""
        from repro.workloads.text import TextWorkload
        from tests.test_fm_index import naive_count, store_fm

        gen = TextWorkload(seed=9, vocabulary_size=300)
        all_pages = [(g, gen.documents(8, avg_chars=60)) for g in range(6)]
        merged = FmBuilder.build(
            [(0, all_pages[0][1])], block_size=512, sample_rate=8
        )
        for g, values in all_pages[1:]:
            part = FmBuilder.build([(0, values)], block_size=512, sample_rate=8)
            merged = FmBuilder.merge([merged, part], [0, g])
        assert len(merged.sentinels) == 6
        full = b"".join(page_text(v) for _, v in all_pages)
        _, querier = store_fm(merged, 6, rows_per_page=8)
        for needle in ["a", "ba", all_pages[3][1][0][:6]]:
            assert querier.count(needle) == naive_count(full, needle.encode())

    def test_merged_samples_are_sorted_and_valid(self):
        from repro.workloads.text import TextWorkload

        gen = TextWorkload(seed=4, vocabulary_size=200)
        b1 = FmBuilder.build(
            [(0, gen.documents(10, 50))], block_size=256, sample_rate=4
        )
        b2 = FmBuilder.build(
            [(0, gen.documents(10, 50))], block_size=256, sample_rate=4
        )
        merged = FmBuilder.merge([b1, b2], [0, 1])
        rows = [r for r, _ in merged.samples]
        assert rows == sorted(rows)
        assert len(merged.samples) == len(b1.samples) + len(b2.samples)
        positions = {p for _, p in merged.samples}
        assert 0 in positions  # part A's origin
        assert b1.text_length in positions  # part B's shifted origin

    def test_pagemap_weaves(self):
        b1 = FmBuilder.build([(0, ["aaa", "bbb"])], block_size=128, sample_rate=4)
        b2 = FmBuilder.build([(0, ["ccc"])], block_size=128, sample_rate=4)
        merged = FmBuilder.merge([b1, b2], [0, 1])
        assert len(merged.pagemap) == merged.n
        assert set(merged.pagemap.tolist()) == {0, 1}
        assert merged.store_pagemap

"""Componentized index file container (§V-B) and the page directory."""

import pytest

from repro.errors import FormatError
from repro.core.componentize import (
    TAIL_SPECULATIVE_BYTES,
    ComponentFileReader,
    ComponentFileWriter,
)
from repro.core.index_file import IndexFileReader, IndexFileWriter, PageDirectory
from repro.formats.page_reader import PageEntry, PageTable
from repro.storage.object_store import InMemoryObjectStore


def make_table(key: str, pages: int = 4, rows: int = 100) -> PageTable:
    entries = [
        PageEntry(
            file_key=key,
            page_id=i,
            offset=4 + i * 1000,
            compressed_size=1000,
            num_values=rows,
            row_start=i * rows,
            codec=1,
        )
        for i in range(pages)
    ]
    return PageTable(key, "c", entries)


@pytest.fixture
def store():
    return InMemoryObjectStore()


class TestComponentFile:
    def test_roundtrip(self, store):
        w = ComponentFileWriter()
        c0 = w.add(b"alpha" * 100)
        c1 = w.add(b"beta")
        store.put("f.index", w.finish({"kind": "test"}))
        r = ComponentFileReader.open(store, "f.index")
        assert r.header == {"kind": "test"}
        assert len(r) == 2
        assert r.read(c0) == b"alpha" * 100
        assert r.read(c1) == b"beta"

    def test_read_many_order(self, store):
        w = ComponentFileWriter()
        ids = [w.add(f"component {i}".encode()) for i in range(5)]
        store.put("f.index", w.finish({}))
        r = ComponentFileReader.open(store, "f.index")
        blobs = r.read_many([ids[3], ids[0]])
        assert blobs == [b"component 3", b"component 0"]

    def test_read_all(self, store):
        w = ComponentFileWriter()
        for i in range(3):
            w.add(bytes([i]) * 10)
        store.put("f.index", w.finish({}))
        r = ComponentFileReader.open(store, "f.index")
        assert r.read_all() == [bytes([i]) * 10 for i in range(3)]

    def test_incompressible_stored_raw(self, store):
        import os

        w = ComponentFileWriter()
        data = os.urandom(1000)
        w.add(data)
        store.put("f.index", w.finish({}))
        r = ComponentFileReader.open(store, "f.index")
        assert r.read(0) == data
        # Stored size must not exceed raw size.
        assert r.component_size(0) <= 1000

    def test_component_out_of_range(self, store):
        w = ComponentFileWriter()
        w.add(b"x")
        store.put("f.index", w.finish({}))
        r = ComponentFileReader.open(store, "f.index")
        with pytest.raises(FormatError):
            r.read(5)

    def test_bad_magic(self, store):
        store.put("junk", b"A" * 64)
        with pytest.raises(FormatError):
            ComponentFileReader.open(store, "junk")

    def test_tail_cache_serves_small_files_free(self, store):
        """A file smaller than the speculative tail costs open() only."""
        w = ComponentFileWriter()
        w.add(b"tiny" * 10)
        store.put("f.index", w.finish({}))
        r = ComponentFileReader.open(store, "f.index")
        before = store.stats.snapshot()
        r.read(0)
        assert store.stats.delta(before).gets == 0

    def test_large_component_fetched_by_range(self, store):
        w = ComponentFileWriter(codec="none")
        big = b"\xab" * (TAIL_SPECULATIVE_BYTES + 50_000)
        w.add(big)
        w.add(b"small")
        store.put("f.index", w.finish({}))
        r = ComponentFileReader.open(store, "f.index")
        before = store.stats.snapshot()
        assert r.read(0) == big
        assert store.stats.delta(before).gets == 1


class TestPageDirectory:
    def test_global_ids(self):
        d = PageDirectory([make_table("a", 3), make_table("b", 2)])
        assert d.num_pages == 5
        assert d.locate(0).file_key == "a"
        assert d.locate(2).file_key == "a"
        assert d.locate(3).file_key == "b"
        assert d.locate(3).page_id == 0
        assert d.base_of(1) == 3

    def test_locate_out_of_range(self):
        d = PageDirectory([make_table("a", 2)])
        with pytest.raises(FormatError):
            d.locate(2)

    def test_num_rows(self):
        d = PageDirectory([make_table("a", 3, rows=10), make_table("b", 1, rows=7)])
        assert d.num_rows == 37

    def test_serialize_roundtrip(self):
        d = PageDirectory([make_table("a", 3), make_table("b", 2)])
        back = PageDirectory.deserialize(d.serialize())
        assert back.num_pages == d.num_pages
        assert back.file_keys == d.file_keys
        assert back.locate(4) == d.locate(4)

    def test_concat(self):
        d1 = PageDirectory([make_table("a", 2)])
        d2 = PageDirectory([make_table("b", 3)])
        merged = PageDirectory.concat([d1, d2])
        assert merged.num_pages == 5
        assert merged.locate(2).file_key == "b"

    def test_table_of(self):
        d = PageDirectory([make_table("a", 2), make_table("b", 2)])
        assert d.table_of(0).file_key == "a"
        assert d.table_of(3).file_key == "b"


class TestIndexFile:
    def test_roundtrip(self, store):
        d = PageDirectory([make_table("a", 2)])
        w = IndexFileWriter("fm", "text", d, params={"x": 1})
        w.add_component("data", b"payload")
        store.put("f.index", w.finish())
        r = IndexFileReader.open(store, "f.index")
        assert r.index_type == "fm"
        assert r.column == "text"
        assert r.covered_files == ["a"]
        assert r.params == {"x": 1}
        assert r.component("data") == b"payload"
        assert r.directory.num_pages == 2

    def test_duplicate_component_rejected(self):
        d = PageDirectory([make_table("a", 1)])
        w = IndexFileWriter("fm", "text", d)
        w.add_component("x", b"1")
        with pytest.raises(FormatError):
            w.add_component("x", b"2")

    def test_missing_component_rejected(self, store):
        d = PageDirectory([make_table("a", 1)])
        w = IndexFileWriter("fm", "text", d)
        store.put("f.index", w.finish())
        r = IndexFileReader.open(store, "f.index")
        with pytest.raises(FormatError):
            r.component("nope")
        assert not r.has_component("nope")

    def test_components_batch(self, store):
        d = PageDirectory([make_table("a", 1)])
        w = IndexFileWriter("fm", "text", d)
        w.add_component("one", b"1")
        w.add_component("two", b"2")
        store.put("f.index", w.finish())
        r = IndexFileReader.open(store, "f.index")
        assert r.components(["two", "one"]) == [b"2", b"1"]

    def test_num_rows_from_directory(self, store):
        d = PageDirectory([make_table("a", 4, rows=25)])
        w = IndexFileWriter("fm", "text", d)
        store.put("f.index", w.finish())
        r = IndexFileReader.open(store, "f.index")
        assert r.num_rows == 100

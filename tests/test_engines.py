"""Baseline engines: brute-force scaling model + copy-data systems."""

import numpy as np
import pytest

from repro.core.queries import SubstringQuery, UuidQuery, VectorQuery
from repro.engines.bruteforce import BruteForceEngine, BruteForceModel
from repro.engines.dedicated import (
    LANCEDB_MODEL,
    OPENSEARCH_MODEL,
    DedicatedModel,
    DedicatedSearchSystem,
    lance_cold_latency,
)
from repro.storage.costs import GB, CostModel

from tests.conftest import event_uuid


class TestBruteForceModel:
    def test_latency_decreases_with_workers(self):
        m = BruteForceModel()
        bytes_ = 100 * GB
        lat = [m.latency(bytes_, w) for w in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a > b for a, b in zip(lat, lat[1:]))

    def test_speedup_saturates(self):
        """Fig. 8a: near-linear early, marked slowdown at 64 workers."""
        m = BruteForceModel()
        bytes_ = 300 * GB
        s_2 = m.latency(bytes_, 1) / m.latency(bytes_, 2)
        s_64 = m.latency(bytes_, 32) / m.latency(bytes_, 64)
        assert s_2 > 1.8  # early doubling nearly halves latency
        assert s_64 < 1.5  # late doubling doesn't

    def test_cost_per_query_rises_at_scale(self):
        """Fig. 8b: cost per query grows once scaling saturates."""
        m = BruteForceModel()
        bytes_ = 300 * GB
        c_8 = m.cost_per_query(bytes_, 8)
        c_64 = m.cost_per_query(bytes_, 64)
        assert c_64 > c_8

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            BruteForceModel().latency(1, 0)

    def test_cost_uses_instance_price(self):
        m = BruteForceModel()
        c = CostModel()
        lat = m.latency(GB, 4)
        assert m.cost_per_query(GB, 4, c) == pytest.approx(
            lat * 4 * c.instance_hourly("r6i.4xlarge") / 3600
        )


class TestBruteForceEngine:
    def test_exact_matches_rottnest(self, indexed_client, event_lake, store):
        engine = BruteForceEngine(store, event_lake)
        key = event_uuid(1, 11)
        brute, scanned = engine.search("uuid", UuidQuery(key), k=5)
        rott = indexed_client.search("uuid", UuidQuery(key), k=5)
        assert {(m.file, m.row) for m in brute} == {
            (m.file, m.row) for m in rott.matches
        }
        assert scanned > 0

    def test_exact_early_exit(self, event_lake, store):
        engine = BruteForceEngine(store, event_lake)
        matches, scanned = engine.search("text", SubstringQuery("a"), k=1)
        assert len(matches) == 1
        # Early exit: did not scan the second file.
        assert scanned < event_lake.snapshot().total_bytes

    def test_scoring_matches_rottnest_top1(self, indexed_client, event_lake, store):
        engine = BruteForceEngine(store, event_lake)
        rng = np.random.default_rng(0)
        q = VectorQuery(rng.normal(size=16).astype(np.float32), nprobe=8, refine=200)
        brute, _ = engine.search("emb", q, k=5)
        rott = indexed_client.search("emb", q, k=5)
        assert brute[0].score == pytest.approx(rott.matches[0].score)

    def test_deleted_rows_excluded(self, event_lake, store):
        key = event_uuid(1, 4)
        event_lake.delete_where("uuid", lambda v: bytes(v) == key)
        engine = BruteForceEngine(store, event_lake)
        matches, _ = engine.search("uuid", UuidQuery(key), k=5)
        assert matches == []

    def test_modeled_helpers(self, event_lake, store):
        engine = BruteForceEngine(store, event_lake, workers=8)
        assert engine.modeled_latency() > 0
        assert engine.modeled_cost_per_query() > 0
        # On a tiny test lake coordination dominates, so *more* workers
        # means *worse* latency — the far-right tail of Fig. 8a.
        assert engine.modeled_latency(workers=64) > engine.modeled_latency(workers=1)


class TestMinMaxPruning:
    """§II-B measured at the engine: pruning works on sorted columns,
    prunes nothing on random identifiers."""

    @pytest.fixture
    def sorted_lake(self):
        from repro.formats.schema import ColumnType, Field, Schema
        from repro.lake.table import LakeTable, TableConfig
        from repro.storage.object_store import InMemoryObjectStore

        store = InMemoryObjectStore()
        schema = Schema.of(Field("ts", ColumnType.INT64))
        lake = LakeTable.create(
            store, "lake/s", schema,
            TableConfig(row_group_rows=100, page_target_bytes=512),
        )
        lake.append({"ts": list(range(1000))})  # 10 row groups
        return store, lake

    def test_sorted_column_prunes(self, sorted_lake):
        from repro.core.queries import RangeQuery

        store, lake = sorted_lake
        engine = BruteForceEngine(store, lake)
        query = RangeQuery(250, 260)
        pruned, scanned_pruned = engine.search("ts", query, k=100, prune=True)
        full, scanned_full = engine.search("ts", query, k=100, prune=False)
        assert {m.row for m in pruned} == {m.row for m in full}
        assert scanned_pruned < scanned_full / 3

    def test_random_uuid_column_prunes_nothing(self, event_lake, store):
        engine = BruteForceEngine(store, event_lake)
        key = event_uuid(1, 100)
        pruned, scanned_pruned = engine.search(
            "uuid", UuidQuery(key), k=100, prune=True
        )
        full, scanned_full = engine.search(
            "uuid", UuidQuery(key), k=100, prune=False
        )
        assert {m.row for m in pruned} == {m.row for m in full}
        # Random 128-bit keys: min-max cannot prune (the paper's point).
        assert scanned_pruned == scanned_full

    def test_substring_never_pruned(self, event_lake, store):
        engine = BruteForceEngine(store, event_lake)
        _, scanned_pruned = engine.search(
            "text", SubstringQuery("zzz"), k=5, prune=True
        )
        _, scanned_full = engine.search(
            "text", SubstringQuery("zzz"), k=5, prune=False
        )
        assert scanned_pruned == scanned_full


class TestDedicated:
    def test_monthly_cost_components(self):
        c = CostModel()
        m = DedicatedModel(instance_type="r6g.large", instance_count=3)
        cost = m.monthly_cost(10 * GB, c)
        compute = 3 * 730 * c.instance_hourly("r6g.large")
        assert cost > compute  # storage on top
        assert cost == pytest.approx(
            compute + 10 * 1.6 * 3 * c.opensearch_ebs_per_gb_month
        )

    def test_paper_configs_exist(self):
        assert OPENSEARCH_MODEL.instance_type == "r6g.large"
        assert LANCEDB_MODEL.instance_type == "r6g.xlarge"

    def test_ingest_and_uuid_search(self, event_lake):
        system = DedicatedSearchSystem()
        n = system.ingest(event_lake, "uuid")
        assert n == 600
        key = event_uuid(2, 9)
        matches = system.search(UuidQuery(key), k=5)
        assert len(matches) == 1
        assert bytes(matches[0].value) == key

    def test_substring_search(self, event_lake):
        system = DedicatedSearchSystem()
        system.ingest(event_lake, "text")
        docs = event_lake.to_pylist("text")
        needle = docs[0][:8]
        matches = system.search(SubstringQuery(needle), k=1000)
        assert len(matches) == sum(needle in d for d in docs)

    def test_vector_search_exact(self, event_lake):
        system = DedicatedSearchSystem(LANCEDB_MODEL)
        system.ingest(event_lake, "emb")
        from tests.conftest import event_batch

        target = event_batch(300, seed=1)["emb"][12]
        matches = system.search(VectorQuery(target), k=3)
        assert matches[0].score == pytest.approx(0.0, abs=1e-9)

    def test_staleness_is_real(self, event_lake):
        """The copy does not see lake writes after ingest (Fig. 1's
        consistency problem with the copy-data approach)."""
        from tests.conftest import event_batch

        system = DedicatedSearchSystem()
        system.ingest(event_lake, "uuid")
        event_lake.append(event_batch(10, seed=42))
        fresh_key = event_uuid(42, 0)
        assert system.search(UuidQuery(fresh_key), k=1) == []

    def test_monthly_cost_after_ingest(self, event_lake):
        system = DedicatedSearchSystem()
        system.ingest(event_lake, "uuid")
        assert system.monthly_cost() > 200  # 3 always-on instances


class TestLanceCold:
    def test_comparable_to_page_reads(self):
        """§VII-C: exact-byte reads beat 300 KB pages only marginally —
        both sit in the flat region of Fig. 10a."""
        lance = lance_cold_latency(nprobe=8, refine=50, list_bytes=200_000)
        # Same shape with 300 KB page reads in the refine round.
        from repro.storage.latency import LatencyModel

        m = LatencyModel()
        rott = (
            m.round_latency([64 * 1024])
            + m.round_latency([200_000] * 8)
            + m.round_latency([300_000] * 50)
        )
        assert lance <= rott
        assert rott / lance < 1.5  # within ~50%, not orders of magnitude

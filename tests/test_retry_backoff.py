"""Decorrelated-jitter backoff in RetryingObjectStore."""

from __future__ import annotations

import pytest

from repro.errors import InjectedFault
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.retry import RetryingObjectStore
from repro.util.clock import SimClock


def _stack(**retry_kwargs):
    inner = InMemoryObjectStore(clock=SimClock(start=0.0))
    faulty = FaultyObjectStore(inner)
    retrying = RetryingObjectStore(faulty, **retry_kwargs)
    inner.put("k", b"v")
    return inner, faulty, retrying


def _run_with_failures(retrying, faulty, failures: int) -> float:
    """Inject ``failures`` transient GET faults, fetch once, and return
    the total simulated backoff time."""
    start = retrying.clock.now()
    for _ in range(failures):
        faulty.fail_next("GET")
    assert retrying.get("k") == b"v"
    return retrying.clock.now() - start


def test_deterministic_under_seeded_rng():
    """Identical seeds + identical failure scripts → identical waits,
    so SimClock tests of retry behavior are reproducible."""
    waits = []
    for _ in range(2):
        _, faulty, retrying = _stack(max_attempts=5, jitter_seed=42)
        waits.append(_run_with_failures(retrying, faulty, 3))
    assert waits[0] == waits[1]
    assert waits[0] > 0
    # A different seed draws a different schedule.
    _, faulty, retrying = _stack(max_attempts=5, jitter_seed=43)
    assert _run_with_failures(retrying, faulty, 3) != waits[0]


def test_delays_bounded_by_base_and_cap():
    """Every wait lies in [base, max_backoff]; the decorrelated-jitter
    growth is clamped by the cap however many times we retry."""
    base, cap, failures = 0.5, 2.0, 7
    _, faulty, retrying = _stack(
        max_attempts=failures + 1,
        base_backoff_s=base,
        max_backoff_s=cap,
        jitter_seed=7,
    )
    total = _run_with_failures(retrying, faulty, failures)
    assert retrying.retries == failures
    assert base * failures <= total <= cap * failures


def test_cap_actually_binds():
    """Without the cap, decorrelated jitter grows ~3x per retry; with a
    tight cap the total stays linear in the retry count."""
    _, faulty, uncapped = _stack(
        max_attempts=8, base_backoff_s=1.0, max_backoff_s=1e9, jitter_seed=1
    )
    grew = _run_with_failures(uncapped, faulty, 7)
    _, faulty2, capped = _stack(
        max_attempts=8, base_backoff_s=1.0, max_backoff_s=1.5, jitter_seed=1
    )
    clamped = _run_with_failures(capped, faulty2, 7)
    assert clamped <= 1.5 * 7
    assert grew > clamped  # the cap made a real difference


def test_jitter_decorrelates_two_clients():
    """Two clients failing in lockstep back off on different schedules —
    the point of jitter (no synchronized retry waves)."""
    _, faulty_a, a = _stack(max_attempts=5, jitter_seed=1)
    _, faulty_b, b = _stack(max_attempts=5, jitter_seed=2)
    assert _run_with_failures(a, faulty_a, 3) != _run_with_failures(
        b, faulty_b, 3
    )


def test_no_backoff_after_final_attempt():
    """When attempts are exhausted the error surfaces immediately; no
    pointless final sleep."""
    _, faulty, retrying = _stack(
        max_attempts=3, base_backoff_s=1.0, max_backoff_s=10.0, jitter_seed=0
    )
    start = retrying.clock.now()
    for _ in range(3):
        faulty.fail_next("GET")
    with pytest.raises(InjectedFault):
        retrying.get("k")
    waited = retrying.clock.now() - start
    # 3 attempts → only 2 sleeps, each at most the cap.
    assert waited <= 2 * 10.0


def test_validates_cap_against_base():
    inner = InMemoryObjectStore(clock=SimClock())
    with pytest.raises(ValueError):
        RetryingObjectStore(inner, base_backoff_s=5.0, max_backoff_s=1.0)

"""Decorrelated-jitter backoff in RetryingObjectStore."""

from __future__ import annotations

import pytest

from repro.errors import InjectedFault, SimulatedCrash
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.retry import RetryingObjectStore
from repro.util.clock import SimClock


def _stack(**retry_kwargs):
    inner = InMemoryObjectStore(clock=SimClock(start=0.0))
    faulty = FaultyObjectStore(inner)
    retrying = RetryingObjectStore(faulty, **retry_kwargs)
    inner.put("k", b"v")
    return inner, faulty, retrying


def _run_with_failures(retrying, faulty, failures: int) -> float:
    """Inject ``failures`` transient GET faults, fetch once, and return
    the total simulated backoff time."""
    start = retrying.clock.now()
    for _ in range(failures):
        faulty.fail_next("GET")
    assert retrying.get("k") == b"v"
    return retrying.clock.now() - start


def test_deterministic_under_seeded_rng():
    """Identical seeds + identical failure scripts → identical waits,
    so SimClock tests of retry behavior are reproducible."""
    waits = []
    for _ in range(2):
        _, faulty, retrying = _stack(max_attempts=5, jitter_seed=42)
        waits.append(_run_with_failures(retrying, faulty, 3))
    assert waits[0] == waits[1]
    assert waits[0] > 0
    # A different seed draws a different schedule.
    _, faulty, retrying = _stack(max_attempts=5, jitter_seed=43)
    assert _run_with_failures(retrying, faulty, 3) != waits[0]


def test_delays_bounded_by_base_and_cap():
    """Every wait lies in [base, max_backoff]; the decorrelated-jitter
    growth is clamped by the cap however many times we retry."""
    base, cap, failures = 0.5, 2.0, 7
    _, faulty, retrying = _stack(
        max_attempts=failures + 1,
        base_backoff_s=base,
        max_backoff_s=cap,
        jitter_seed=7,
    )
    total = _run_with_failures(retrying, faulty, failures)
    assert retrying.retries == failures
    assert base * failures <= total <= cap * failures


def test_cap_actually_binds():
    """Without the cap, decorrelated jitter grows ~3x per retry; with a
    tight cap the total stays linear in the retry count."""
    _, faulty, uncapped = _stack(
        max_attempts=8, base_backoff_s=1.0, max_backoff_s=1e9, jitter_seed=1
    )
    grew = _run_with_failures(uncapped, faulty, 7)
    _, faulty2, capped = _stack(
        max_attempts=8, base_backoff_s=1.0, max_backoff_s=1.5, jitter_seed=1
    )
    clamped = _run_with_failures(capped, faulty2, 7)
    assert clamped <= 1.5 * 7
    assert grew > clamped  # the cap made a real difference


def test_jitter_decorrelates_two_clients():
    """Two clients failing in lockstep back off on different schedules —
    the point of jitter (no synchronized retry waves)."""
    _, faulty_a, a = _stack(max_attempts=5, jitter_seed=1)
    _, faulty_b, b = _stack(max_attempts=5, jitter_seed=2)
    assert _run_with_failures(a, faulty_a, 3) != _run_with_failures(
        b, faulty_b, 3
    )


def test_no_backoff_after_final_attempt():
    """When attempts are exhausted the error surfaces immediately; no
    pointless final sleep."""
    _, faulty, retrying = _stack(
        max_attempts=3, base_backoff_s=1.0, max_backoff_s=10.0, jitter_seed=0
    )
    start = retrying.clock.now()
    for _ in range(3):
        faulty.fail_next("GET")
    with pytest.raises(InjectedFault):
        retrying.get("k")
    waited = retrying.clock.now() - start
    # 3 attempts → only 2 sleeps, each at most the cap.
    assert waited <= 2 * 10.0


def test_validates_cap_against_base():
    inner = InMemoryObjectStore(clock=SimClock())
    with pytest.raises(ValueError):
        RetryingObjectStore(inner, base_backoff_s=5.0, max_backoff_s=1.0)


class TestCrashCountdownsUnderRetries:
    """One-crash-per-rule semantics when faults and retries interact.

    The countdown of a rule counts *effective* operations — attempts
    that reached the inner store — never raw attempts. An attempt
    aborted by another rule's injected fault is invisible to every
    other rule, so retried PUTs cannot double-decrement a schedule.
    """

    def test_aborted_attempt_does_not_tick_other_fault_rules(self):
        inner = InMemoryObjectStore(clock=SimClock(start=0.0))
        faulty = FaultyObjectStore(inner)
        retrying = RetryingObjectStore(faulty, max_attempts=3, jitter_seed=0)
        # Registration order is the old failure mode: the armed rule
        # (countdown=1) is checked first, so the buggy single-pass
        # check ticked it while deciding the countdown=0 rule fires.
        armed = faulty.fail_next("PUT", countdown=1)
        faulty.fail_next("PUT", countdown=0)

        # First logical put: attempt 1 is aborted by the countdown=0
        # rule, the retry reaches the store. ``armed`` must see exactly
        # one effective PUT — its countdown drops 1 -> 0, no fire yet.
        retrying.put("idx/a", b"v1")
        assert inner.get("idx/a") == b"v1"
        assert armed.countdown == 0
        assert not armed.fired

        # Second logical put: now ``armed`` fires (and, being
        # transient, is absorbed by one retry). Under the old
        # per-attempt ticking it would already have fired during the
        # first logical put's retry.
        before = retrying.retries
        retrying.put("idx/b", b"v2")
        assert armed.fired
        assert armed.fired_on == ("PUT", "idx/b")
        assert retrying.retries == before + 1

    def test_crash_fires_once_and_is_not_retried(self):
        inner = InMemoryObjectStore(clock=SimClock(start=0.0))
        faulty = FaultyObjectStore(inner)
        retrying = RetryingObjectStore(faulty, max_attempts=4, jitter_seed=0)
        rule = faulty.crash_after("PUT", countdown=1)

        retrying.put("idx/a", b"v1")  # ticks the countdown: 1 -> 0
        with pytest.raises(SimulatedCrash):
            retrying.put("idx/b", b"v2")
        # The crash surfaced through the retry wrapper un-retried: the
        # rule fired exactly once and no backoff time was burned.
        assert rule.fired
        assert rule.fired_on == ("PUT", "idx/b")
        assert retrying.retries == 0
        assert retrying.clock.now() == 0.0
        # ...and the mutation beneath the crash is durable.
        assert inner.get("idx/b") == b"v2"

    def test_faulted_attempts_never_tick_crash_rules(self):
        inner = InMemoryObjectStore(clock=SimClock(start=0.0))
        faulty = FaultyObjectStore(inner)
        retrying = RetryingObjectStore(faulty, max_attempts=3, jitter_seed=0)
        crash = faulty.crash_after("PUT", countdown=2)
        faulty.fail_next("PUT", countdown=0)

        # Attempt 1 faults (no durable effect), attempt 2 lands: one
        # effective PUT, one crash-countdown tick — not two.
        retrying.put("idx/a", b"v1")
        assert crash.countdown == 1
        retrying.put("idx/b", b"v2")
        assert crash.countdown == 0
        with pytest.raises(SimulatedCrash):
            retrying.put("idx/c", b"v3")
        assert crash.fired_on == ("PUT", "idx/c")

    def test_sibling_crash_rules_all_count_a_shared_boundary(self):
        inner = InMemoryObjectStore(clock=SimClock(start=0.0))
        faulty = FaultyObjectStore(inner)
        first = faulty.crash_after("PUT", countdown=0)
        second = faulty.crash_after("PUT", countdown=1)

        with pytest.raises(SimulatedCrash):
            faulty.put("idx/a", b"v1")
        # The raise for ``first`` must not skip ``second``'s tick: the
        # mutation was durable, so every in-scope rule counted it.
        assert first.fired
        assert second.countdown == 0
        assert not second.fired

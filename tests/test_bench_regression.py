"""Perf-regression gate: committed bench results vs committed baselines.

Benchmarks persist their numbers to ``benchmarks/results/BENCH_*.json``
(via :func:`benchmarks.common.write_bench`); blessed copies live in
``benchmarks/baselines/``. This gate fails when any baselined metric
got more than 20% *worse* in the current results — where "worse" is
direction-aware: metric names containing a :data:`HIGHER_IS_BETTER`
fragment (speedups, hit rates, throughputs) must not fall, everything
else (latencies, costs, request counts) must not rise.

The numbers under test are *modeled* (request-trace round trips under
``LatencyModel``, dollars under ``CostModel``), so they are stable
run-to-run and a 20% move is a real plan-shape change, not noise. To
bless an intentional change, re-run the benchmarks and copy the fresh
``results/BENCH_*.json`` over the baseline.

A metric present only in the baseline (deleted from results) fails —
coverage must not silently shrink. A metric present only in the
results passes — new metrics get baselined when they are blessed.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
RESULTS = REPO / "benchmarks" / "results"
BASELINES = REPO / "benchmarks" / "baselines"

#: Name fragments marking metrics where bigger numbers are better.
HIGHER_IS_BETTER = ("speedup", "hit_rate", "qps", "throughput")

#: Metrics excluded from the gate: legitimately scheduling-dependent.
#: Single-flight dedup counts — and, in the concurrent-clients
#: measurement, everything downstream of them (which repeats hit the
#: cache, hence the latency percentiles and the qps ceiling) — depend
#: on real thread interleaving, not on the modeled plan shape.
VOLATILE = (
    "deduplicated",
    "concurrent_clients.cache_hit_rate",
    "concurrent_clients.p50",
    "concurrent_clients.p99",
    "concurrent_clients.qps",
)

#: Allowed relative move in the worse direction.
TOLERANCE = 0.20

BASELINE_FILES = sorted(BASELINES.glob("BENCH_*.json"))


def _metrics(doc: dict) -> dict[str, float]:
    """Flatten a bench doc to ``measurement.metric -> value``."""
    flat: dict[str, float] = {}
    for measurement, body in doc.get("measurements", {}).items():
        for name, value in body.get("metrics", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[f"{measurement}.{name}"] = float(value)
    return flat


def _is_higher_better(name: str) -> bool:
    return any(frag in name for frag in HIGHER_IS_BETTER)


def test_baselines_exist():
    """The gate must actually be guarding something."""
    assert BASELINE_FILES, f"no BENCH_*.json baselines in {BASELINES}"


@pytest.mark.parametrize(
    "baseline_path", BASELINE_FILES, ids=lambda p: p.stem
)
def test_no_bench_regression(baseline_path):
    results_path = RESULTS / baseline_path.name
    assert results_path.exists(), (
        f"{baseline_path.name} has a baseline but no committed results — "
        f"re-run the benchmark that writes {results_path}"
    )
    baseline = _metrics(json.loads(baseline_path.read_text()))
    current = _metrics(json.loads(results_path.read_text()))

    violations: list[str] = []
    for name, base in sorted(baseline.items()):
        if any(frag in name for frag in VOLATILE):
            continue
        if name not in current:
            violations.append(f"{name}: in baseline but missing from results")
            continue
        if base == 0:
            continue  # no relative comparison possible
        now = current[name]
        if _is_higher_better(name):
            if now < base * (1 - TOLERANCE):
                violations.append(
                    f"{name}: fell {base:.4g} -> {now:.4g} "
                    f"(> {TOLERANCE:.0%} below baseline)"
                )
        elif now > base * (1 + TOLERANCE):
            violations.append(
                f"{name}: rose {base:.4g} -> {now:.4g} "
                f"(> {TOLERANCE:.0%} above baseline)"
            )
    assert not violations, (
        f"{baseline_path.name}: {len(violations)} metric(s) regressed "
        f"beyond {TOLERANCE:.0%}:\n  " + "\n  ".join(violations)
    )


def test_direction_classifier_spots_known_names():
    """The fragments must classify this repo's real metric names."""
    assert _is_higher_better("index_scaling.index_speedup_4x")
    assert _is_higher_better("cold_vs_warm.cache_hit_rate")
    assert _is_higher_better("concurrent_clients.qps_ceiling")
    assert not _is_higher_better("index_scaling.index_modeled_ms_4_workers")
    assert not _is_higher_better("executor_scaling.cost_usd_16_searchers")

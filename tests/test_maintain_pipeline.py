"""repro.maintain: pipeline reports, IO budget, streaming merges.

The end-to-end guarantees (byte-identity of parallel maintenance, crash
recovery) live in test_chaos_resume.py and test_conformance_matrix.py;
this file unit-tests the pipeline machinery itself: reports reconcile
with IOStats like query bills do, parallelism buys modeled latency, the
shared IO budget really caps combined concurrency, and the streaming
merges are byte-equal to the materialized ones.
"""

from __future__ import annotations

import hashlib
import threading
import time

import pytest

from repro.core.client import RottnestClient
from repro.core.index_file import IndexFileWriter, PageDirectory
from repro.core.queries import UuidQuery
from repro.errors import RottnestIndexError
from repro.indices.fm.fm_index import FmBuilder
from repro.indices.uuid_trie import UuidTrieBuilder
from repro.lake.table import LakeTable, TableConfig
from repro.maintain import IOBudget, MaintainReport, MaintenancePipeline
from repro.obs.attribution import price_iostats
from repro.obs.trace import Tracer, use_tracer
from repro.serve.executor import SearchExecutor
from repro.storage.costs import CostModel
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.pool import TracedPool
from repro.util.clock import SimClock

from tests.conftest import EVENT_SCHEMA, event_batch, event_uuid

COSTS = CostModel()
LAT = LatencyModel()


def _lake_store(files: int = 6, rows: int = 24):
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(
        store,
        "lake/events",
        EVENT_SCHEMA,
        TableConfig(row_group_rows=16, page_target_bytes=2048),
    )
    for i in range(files):
        lake.append(event_batch(rows, seed=i + 1))
    return store, lake


def _client(store, lake) -> RottnestClient:
    return RottnestClient(store, "idx/events", lake)


def _assert_reconciles(bill, delta) -> None:
    """Same acceptance criterion as query bills: totals equal the
    IOStats delta priced by the cost model, bit for bit."""
    assert bill.gets == delta.gets
    assert bill.puts == delta.puts
    assert bill.lists == delta.lists
    assert bill.heads == delta.heads
    assert bill.deletes == delta.deletes
    assert bill.bytes_read == delta.bytes_read
    assert bill.total_request_cost_usd(COSTS) == price_iostats(delta, COSTS)


# ---------------------------------------------------------------------
# reports + cost attribution
# ---------------------------------------------------------------------
class TestIndexReports:
    def test_index_report_reconciles_with_iostats(self):
        store, lake = _lake_store(files=4)
        client = _client(store, lake)
        tracer = Tracer(clock=store.clock)
        before = store.stats.snapshot()
        with use_tracer(tracer), MaintenancePipeline(client, workers=3) as pipe:
            report = pipe.index("uuid", "uuid_trie")
        delta = store.stats.snapshot().delta(before)

        assert report.op == "index"
        assert report.workers == 3
        assert len(report.records) == 1
        assert report.worker_tasks == 4  # one extraction task per file
        total_ops = (
            delta.gets + delta.puts + delta.lists + delta.heads + delta.deletes
        )
        assert report.trace.total_requests == total_ops
        assert report.modeled_latency(LAT) > 0
        _assert_reconciles(report.bill(latency=LAT, costs=COSTS), delta)

    def test_bill_phases_cover_plan_extract_commit(self):
        store, lake = _lake_store(files=3)
        client = _client(store, lake)
        tracer = Tracer(clock=store.clock)
        with use_tracer(tracer), MaintenancePipeline(client, workers=2) as pipe:
            report = pipe.index("uuid", "uuid_trie")
        phases = {p.phase: p for p in report.bill().phases}
        assert {"plan", "extract", "commit"} <= set(phases)
        assert phases["extract"].gets > 0
        assert phases["commit"].puts > 0

    def test_parallel_index_is_modeled_faster(self):
        """Same lake, same work — workers=4 must beat workers=1 on
        modeled latency (the 2x acceptance bar lives in the bench)."""
        modeled = {}
        for workers in (1, 4):
            store, lake = _lake_store(files=8)
            client = _client(store, lake)
            tracer = Tracer(clock=store.clock)
            with use_tracer(tracer), MaintenancePipeline(
                client, workers=workers
            ) as pipe:
                modeled[workers] = pipe.index("uuid", "uuid_trie").modeled_latency(
                    LAT
                )
        assert modeled[4] < modeled[1]

    def test_noop_index_returns_empty_report(self):
        store, lake = _lake_store(files=2)
        client = _client(store, lake)
        tracer = Tracer(clock=store.clock)
        with use_tracer(tracer), MaintenancePipeline(client, workers=2) as pipe:
            pipe.index("uuid", "uuid_trie")
            report = pipe.index("uuid", "uuid_trie")  # nothing new
        assert report.records == []
        assert report.worker_tasks == 0


class TestCompactAndVacuumReports:
    def _compactable_client(self, files: int = 4):
        store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
        lake = LakeTable.create(
            store,
            "lake/events",
            EVENT_SCHEMA,
            TableConfig(row_group_rows=16, page_target_bytes=2048),
        )
        client = _client(store, lake)
        for i in range(files):  # one small index file per append
            lake.append(event_batch(24, seed=i + 1))
            client.index("uuid", "uuid_trie")
        return store, client

    def test_compact_report_reconciles_with_iostats(self):
        store, client = self._compactable_client()
        tracer = Tracer(clock=store.clock)
        before = store.stats.snapshot()
        with use_tracer(tracer), MaintenancePipeline(client, workers=2) as pipe:
            report = pipe.compact("uuid", "uuid_trie")
        delta = store.stats.snapshot().delta(before)

        assert report.op == "compact"
        assert len(report.records) == 1  # four small files -> one group
        assert report.worker_tasks == 1
        _assert_reconciles(report.bill(latency=LAT, costs=COSTS), delta)

    def test_vacuum_is_a_serial_passthrough(self):
        store, client = self._compactable_client()
        with MaintenancePipeline(client, workers=2) as pipe:
            pipe.compact("uuid", "uuid_trie")
            store.clock.advance(7200.0)
            report = pipe.vacuum(snapshot_id=client.lake.latest_version())
        assert report.deleted_objects  # superseded per-file indices removed

    def test_bill_requires_a_span_tree(self):
        report = MaintainReport(op="index", workers=1)
        with pytest.raises(ValueError):
            report.bill()


# ---------------------------------------------------------------------
# IO budget: the backpressure signal
# ---------------------------------------------------------------------
class TestIOBudget:
    def test_rejects_non_positive_slots(self):
        with pytest.raises(RottnestIndexError):
            IOBudget(0)

    def test_caps_combined_concurrency_across_pools(self):
        """Two 4-wide pools sharing a 2-slot budget never have more
        than 2 tasks inside their store sections at once."""
        store = InMemoryObjectStore(clock=SimClock(start=0.0))
        store.put("k", b"v")
        budget = IOBudget(2, name="test-cap")
        peak = 0
        active = 0
        lock = threading.Lock()

        def task():
            nonlocal peak, active
            with lock:
                active += 1
                peak = max(peak, active)
            time.sleep(0.005)  # hold the slot long enough to overlap
            store.get("k")
            with lock:
                active -= 1

        pools = [
            TracedPool(store, workers=4, budget=budget) for _ in range(2)
        ]
        try:
            threads = [
                threading.Thread(target=pool.run, args=([task] * 6,))
                for pool in pools
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            for pool in pools:
                pool.close()
        assert peak <= 2
        assert budget.in_use == 0

    def test_maintenance_overlaps_serving_under_shared_budget(self):
        """A pipeline and an executor sharing one budget both finish
        correctly — the overlap changes scheduling, never results."""
        store, lake = _lake_store(files=4, rows=24)
        client = _client(store, lake)
        client.index("uuid", "uuid_trie")
        lake.append(event_batch(24, seed=99))

        budget = IOBudget(2, name="test-overlap")
        errors: list[Exception] = []
        results: dict[str, object] = {}

        def serve():
            try:
                with SearchExecutor(client, max_searchers=3, budget=budget) as ex:
                    results["search"] = ex.search(
                        "uuid", UuidQuery(event_uuid(1, 3)), k=5
                    )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        def maintain():
            try:
                with MaintenancePipeline(client, workers=3, budget=budget) as pipe:
                    results["index"] = pipe.index("uuid", "uuid_trie")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=serve), threading.Thread(target=maintain)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results["search"].matches
        assert len(results["index"].records) == 1
        assert budget.in_use == 0


# ---------------------------------------------------------------------
# streaming merges: byte-equal to the materialized fold
# ---------------------------------------------------------------------
def _uuids(seed: int, n: int) -> list[bytes]:
    return [
        hashlib.sha256(f"{seed}-{i}".encode()).digest()[:16] for i in range(n)
    ]


def _blob(builder, type_name: str) -> bytes:
    writer = IndexFileWriter(type_name, "col", PageDirectory([]))
    builder.write(writer)
    return writer.finish()


class TestMergeStreaming:
    def _trie_parts(self):
        return [
            UuidTrieBuilder.build([(0, _uuids(s, 20)), (1, _uuids(s + 10, 20))])
            for s in range(3)
        ]

    def _fm_parts(self):
        texts = [
            ["the quick brown", "fox jumps"],
            ["over the lazy", "dog again"],
            ["mississippi", "banana split"],
        ]
        return [
            FmBuilder.build(
                [(0, t[0:1]), (1, t[1:2])], block_size=64, sample_rate=4
            )
            for t in texts
        ]

    def test_trie_streaming_is_byte_equal(self):
        offsets = [0, 2, 4]
        merged = UuidTrieBuilder.merge(self._trie_parts(), offsets)
        streamed = UuidTrieBuilder.merge_streaming(
            iter(self._trie_parts()), offsets
        )
        assert _blob(merged, "uuid_trie") == _blob(streamed, "uuid_trie")

    def test_fm_streaming_is_byte_equal(self):
        offsets = [0, 2, 4]
        merged = FmBuilder.merge(self._fm_parts(), offsets)
        streamed = FmBuilder.merge_streaming(iter(self._fm_parts()), offsets)
        assert _blob(merged, "fm") == _blob(streamed, "fm")

    def test_streaming_consumes_lazily(self):
        """merge_streaming must pull parts from the iterator instead of
        materializing it — that is its bounded-memory contract."""
        pulled = []

        def parts():
            for i, part in enumerate(self._trie_parts()):
                pulled.append(i)
                yield part

        UuidTrieBuilder.merge_streaming(parts(), [0, 2, 4])
        assert pulled == [0, 1, 2]

    @pytest.mark.parametrize("cls", [UuidTrieBuilder, FmBuilder])
    def test_parts_offsets_mismatch_raises(self, cls):
        parts = self._trie_parts() if cls is UuidTrieBuilder else self._fm_parts()
        with pytest.raises(RottnestIndexError):
            cls.merge_streaming(iter(parts), [0, 2])  # one offset short
        with pytest.raises(RottnestIndexError):
            cls.merge_streaming(iter(()), [])  # nothing to merge


class TestTracedPoolValidation:
    def test_rejects_non_positive_workers(self):
        store = InMemoryObjectStore(clock=SimClock(start=0.0))
        with pytest.raises(RottnestIndexError):
            TracedPool(store, workers=0)

"""SLO burn-rate evaluation against hub telemetry."""

from __future__ import annotations

import json

import pytest

from repro.obs.slo import (
    SLO,
    AvailabilityObjective,
    CostObjective,
    LatencyObjective,
    default_slo,
)
from repro.obs.timeseries import TelemetryHub


def _hub_with_queries(
    *,
    latencies: list[float],
    degraded_every: int = 0,
    cost_usd: float = 1e-6,
    window_s: float = 60.0,
    spread_windows: int = 1,
) -> TelemetryHub:
    hub = TelemetryHub()
    for i, latency in enumerate(latencies):
        at_s = (i % spread_windows) * window_s + 1.0
        hub.quantiles("serve.latency_s").observe(latency, at_s=at_s)
        hub.series("serve.queries").observe(1.0, at_s=at_s)
        hub.series("serve.cost_usd").observe(cost_usd, at_s=at_s)
        if degraded_every and i % degraded_every == 0:
            hub.series("serve.degraded").observe(1.0, at_s=at_s)
    return hub


class TestLatencyObjective:
    def test_healthy(self):
        hub = _hub_with_queries(latencies=[0.1] * 200)
        status = LatencyObjective(name="lat").measure(hub, short_windows=5)
        assert status.ok
        assert status.burn.long_burn == 0.0
        assert status.observed == pytest.approx(0.1, rel=0.02)

    def test_breach_needs_both_horizons(self):
        # All 200 queries slow, all in the most recent window: long and
        # short horizons both burn -> breach.
        hub = _hub_with_queries(latencies=[2.0] * 200)
        status = LatencyObjective(name="lat", threshold_s=1.0).measure(
            hub, short_windows=5
        )
        assert not status.ok
        assert status.burn.long_burn > 1.0
        assert status.burn.short_burn > 1.0

    def test_old_incident_does_not_page(self):
        # Slow queries 10 windows ago, fast ones since: the long horizon
        # still burns but the short one is quiet -> no breach.
        hub = TelemetryHub()
        wq = hub.quantiles("serve.latency_s")
        for _ in range(50):
            wq.observe(5.0, at_s=1.0)  # window 0
        for w in range(10, 16):
            for _ in range(50):
                wq.observe(0.05, at_s=w * 60.0 + 1.0)
        status = LatencyObjective(name="lat", threshold_s=1.0).measure(
            hub, short_windows=5
        )
        assert status.burn.long_burn > 1.0
        assert status.burn.short_burn == 0.0
        assert status.ok

    def test_empty_hub_ok(self):
        status = LatencyObjective(name="lat").measure(
            TelemetryHub(), short_windows=5
        )
        assert status.ok
        assert status.burn.long_events == 0


class TestAvailabilityObjective:
    def test_healthy_and_breached(self):
        healthy = _hub_with_queries(latencies=[0.1] * 1000)
        ok = AvailabilityObjective(name="avail").measure(
            healthy, short_windows=5
        )
        assert ok.ok
        assert ok.observed == 1.0
        # 1 in 10 degraded >> the 0.1% error budget.
        sick = _hub_with_queries(latencies=[0.1] * 1000, degraded_every=10)
        bad = AvailabilityObjective(name="avail").measure(
            sick, short_windows=5
        )
        assert not bad.ok
        assert bad.observed == pytest.approx(0.9)


class TestCostObjective:
    def test_budget(self):
        cheap = _hub_with_queries(latencies=[0.1] * 50, cost_usd=1e-6)
        assert CostObjective(name="cost").measure(cheap, short_windows=5).ok
        pricy = _hub_with_queries(latencies=[0.1] * 50, cost_usd=0.5)
        status = CostObjective(name="cost").measure(pricy, short_windows=5)
        assert not status.ok
        assert status.observed == pytest.approx(0.5)


class TestSLOReport:
    def test_default_slo_on_healthy_hub(self):
        hub = _hub_with_queries(latencies=[0.2] * 300)
        report = default_slo().evaluate(hub)
        assert report.ok
        assert report.total_events == 300
        text = report.describe()
        assert "all objectives met" in text
        assert "[OK" in text
        # Round-trips to JSON for the dashboard and telemetry dumps.
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert len(payload["objectives"]) == 3

    def test_breach_surfaces_in_report(self):
        hub = _hub_with_queries(latencies=[3.0] * 300)
        report = default_slo(latency_p99_s=1.0).evaluate(hub)
        assert not report.ok
        assert "SLO BREACHED" in report.describe()
        assert "BREACH" in report.describe()

    def test_objective_names_carry_limits(self):
        slo = default_slo(
            latency_p99_s=0.5, availability=0.99, cost_usd_per_query=1e-4
        )
        names = [o.name for o in slo.objectives]
        assert names == [
            "latency_p99_le_0.5s",
            "availability_ge_0.99",
            "cost_le_0.0001_usd_per_query",
        ]

    def test_custom_bundle(self):
        hub = _hub_with_queries(latencies=[0.1] * 10)
        report = SLO(
            objectives=[LatencyObjective(name="only")], short_windows=2
        ).evaluate(hub)
        assert [s.name for s in report.statuses] == ["only"]

"""Property tests: crash resumability and parallel/serial identity.

Two byte-level properties of the maintenance protocol:

* for *any* prefix of a compact run — the client dies right after its
  Nth mutation — a second ``compact`` from a brand-new client leaves
  the lake's object state byte-identical to a run that was never
  interrupted (modulo metadata checkpoints, which are a pure read
  optimization a no-op recovery legitimately skips);
* for *any* lake shape and worker count, a parallel index+compact
  history commits byte-identical objects and identical metadata to the
  serial history — parallelism changes request scheduling, never bytes.

Hypothesis drives the lake shape (number of files, rows per file) and
the crash boundary / worker count; determinism of the convergence
comes from content-addressed merged-index keys plus the idempotent
metadata commit, both in :mod:`repro.core.maintenance`.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos.harness import _logical_state
from repro.core.client import RottnestClient
from repro.core.maintenance import compact_indices
from repro.errors import SimulatedCrash
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock

SCHEMA = Schema.of(Field("uuid", ColumnType.BINARY))


def _client(store) -> RottnestClient:
    client = RottnestClient(store, "idx/u", LakeTable.open(store, "lake/u"))
    client.meta.checkpoint_interval = 3  # checkpoints land mid-history too
    return client


def _build_lake(n_files: int, rows: int) -> InMemoryObjectStore:
    store = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(
        store, "lake/u", SCHEMA, TableConfig(row_group_rows=64,
                                             page_target_bytes=512)
    )
    for i in range(n_files):
        lake.append(
            {
                "uuid": [
                    f"{i:02d}-{j:04d}".encode().ljust(16, b"\0")
                    for j in range(rows)
                ]
            }
        )
        _client(store).index("uuid", "uuid_trie")
    return store


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_any_compact_prefix_plus_fresh_compact_is_byte_identical(data):
    n_files = data.draw(st.integers(min_value=2, max_value=4), label="files")
    rows = data.draw(st.integers(min_value=16, max_value=48), label="rows")
    base = _build_lake(n_files, rows)

    # Uninterrupted reference run on a clone of the starting state.
    reference = base.clone()
    before = reference.stats.snapshot()
    compact_indices(_client(reference), "uuid", "uuid_trie")
    delta = reference.stats.snapshot().delta(before)
    mutations = delta.puts + delta.deletes
    assert mutations >= 2  # merged upload + commit, at least

    # Kill a compacting client right after an arbitrary mutation...
    crash_at = data.draw(
        st.integers(min_value=0, max_value=mutations - 1), label="crash_at"
    )
    store = base.clone()
    faulty = FaultyObjectStore(store)
    faulty.crash_after("MUTATE", countdown=crash_at)
    with pytest.raises(SimulatedCrash):
        compact_indices(_client(faulty), "uuid", "uuid_trie")

    # ...then recover with a brand-new, fault-free client.
    compact_indices(_client(store), "uuid", "uuid_trie")

    assert _logical_state(store) == _logical_state(reference)


# ---------------------------------------------------------------------
# parallel maintenance == serial maintenance, byte for byte
# ---------------------------------------------------------------------
def _deterministic_client(store) -> RottnestClient:
    """A client whose salted index keys come from a counter instead of
    ``os.urandom``, so two maintenance histories over clones of one
    store produce byte-identical objects when the protocol does."""
    counter = itertools.count()
    client = RottnestClient(
        store,
        "idx/u",
        LakeTable.open(store, "lake/u"),
        key_entropy=lambda: next(counter).to_bytes(4, "big"),
    )
    client.meta.checkpoint_interval = 3
    return client


def _maintain_history(store, workers: int, batches: int) -> None:
    """Index each lake version in turn at ``workers`` width, then
    compact — the canonical maintenance history of one lake. (Appends
    happen on the *base* store before cloning: lake data-file names
    are salted with no injection hook, so the appended bytes must be
    shared for two histories to be comparable.)"""
    client = _deterministic_client(store)
    for version in range(1, batches + 1):
        client.index(
            "uuid",
            "uuid_trie",
            snapshot=client.lake.snapshot(version),
            workers=workers,
        )
    compact_indices(client, "uuid", "uuid_trie", workers=workers)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_parallel_maintenance_is_byte_identical_to_serial(data):
    batches = data.draw(st.integers(min_value=2, max_value=4), label="batches")
    rows = data.draw(st.integers(min_value=16, max_value=48), label="rows")
    workers = data.draw(st.sampled_from([2, 3, 4]), label="workers")

    base = InMemoryObjectStore(clock=SimClock(start=1_000_000.0))
    lake = LakeTable.create(
        base, "lake/u", SCHEMA, TableConfig(row_group_rows=64,
                                            page_target_bytes=512)
    )
    for i in range(batches):
        lake.append(
            {
                "uuid": [
                    f"{i:02d}-{j:04d}".encode().ljust(16, b"\0")
                    for j in range(rows)
                ]
            }
        )

    serial = base.clone()
    parallel = base.clone()
    _maintain_history(serial, 1, batches)
    _maintain_history(parallel, workers, batches)

    # Byte-identical objects at identical keys (checkpoints excluded).
    assert _logical_state(parallel) == _logical_state(serial)
    # ...and identical committed metadata, record for record.
    serial_meta = _deterministic_client(serial).meta.records()
    parallel_meta = _deterministic_client(parallel).meta.records()
    assert parallel_meta == serial_meta

"""SearchServer: admission control, dedup, warmup, ServeStats."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.client import RottnestClient
from repro.core.queries import UuidQuery
from repro.errors import SimulatedCrash
from repro.storage.faults import FaultyObjectStore
from repro.errors import ServeError, ServerOverloaded
from repro.lake.table import LakeTable
from repro.serve import CachingObjectStore, SearchServer, ServeStats, SingleFlight
from repro.serve.server import _percentile
from repro.storage.retry import RetryingObjectStore
from repro.tco.throughput import ThroughputModel

from tests.conftest import event_uuid


# -- SingleFlight -----------------------------------------------------


class TestSingleFlight:
    def test_sequential_calls_each_lead(self):
        sf = SingleFlight()
        assert sf.do("k", lambda: 1) == 1
        assert sf.do("k", lambda: 2) == 2  # prior flight landed
        assert sf.leaders == 2 and sf.shared == 0
        assert sf.in_flight() == 0

    def test_concurrent_calls_share_one_execution(self):
        sf = SingleFlight()
        started, release = threading.Event(), threading.Event()
        calls = []

        def work():
            calls.append(1)
            started.set()
            assert release.wait(timeout=5)
            return "answer"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(sf.do_detailed("k", work)))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        assert started.wait(timeout=5)
        deadline = time.monotonic() + 5
        while sf.shared < 3 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for t in threads:
            t.join(timeout=5)
        assert len(calls) == 1  # the work ran exactly once
        assert sorted(r[1] for r in results) == [False, True, True, True]
        assert all(r[0] == "answer" for r in results)
        assert sf.leaders == 1 and sf.shared == 3

    def test_leader_exception_propagates_to_sharers(self):
        sf = SingleFlight()
        started, release = threading.Event(), threading.Event()

        def boom():
            started.set()
            assert release.wait(timeout=5)
            raise ValueError("leader failed")

        outcomes = []

        def caller():
            try:
                sf.do("k", boom)
                outcomes.append("ok")
            except ValueError:
                outcomes.append("raised")

        threads = [threading.Thread(target=caller) for _ in range(3)]
        for t in threads:
            t.start()
        assert started.wait(timeout=5)
        deadline = time.monotonic() + 5
        while sf.shared < 2 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for t in threads:
            t.join(timeout=5)
        assert outcomes == ["raised"] * 3

    def test_distinct_keys_do_not_share(self):
        sf = SingleFlight()
        assert sf.do("a", lambda: "a") == "a"
        assert sf.do("b", lambda: "b") == "b"
        assert sf.leaders == 2 and sf.shared == 0


# -- ServeStats -------------------------------------------------------


class TestServeStats:
    def test_percentiles_nearest_rank(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([0.4, 0.1, 0.3, 0.2, 0.5], 0.5) == 0.3
        stats = ServeStats()
        for latency in (0.4, 0.1, 0.3, 0.2, 0.5):
            stats.observe_latency(latency)
        assert stats.p50_s == pytest.approx(0.3, rel=0.02)
        assert stats.p99_s == pytest.approx(0.5, rel=0.02)
        assert stats.percentile(0.0) == pytest.approx(0.1, rel=0.02)
        assert stats.mean_latency_s == pytest.approx(0.3)
        assert stats.first_latency_s == 0.4
        assert stats.last_latency_s == 0.5

    def test_qps_estimate_littles_law(self):
        stats = ServeStats()
        stats.observe_latency(0.5)
        stats.observe_latency(0.5)
        assert stats.qps_estimate(8) == pytest.approx(16.0)
        assert ServeStats().qps_estimate(8) == 0.0

    def test_latency_memory_is_bounded(self):
        # The whole point of the sketch: per-query state stays O(1) no
        # matter how many queries flow through the server.
        stats = ServeStats()
        for i in range(50_000):
            stats.observe_latency(1e-4 * (1 + i % 997))
        assert stats.latency_count == 50_000
        assert stats.latency_sketch.bin_count <= stats.latency_sketch.max_bins
        assert stats.p99_s > stats.p50_s > 0

    def test_throughput_model_uses_measured_rpq(self):
        stats = ServeStats(queries=10, total_requests=250)
        assert stats.requests_per_query == 25.0
        model = stats.throughput_model()
        assert model.rottnest_requests_per_query == 25.0
        base = ThroughputModel()
        assert model.prefix_get_rps == base.prefix_get_rps
        # No data: the paper's assumed constant is kept.
        empty = ServeStats().throughput_model()
        assert (
            empty.rottnest_requests_per_query
            == base.rottnest_requests_per_query
        )

    def test_describe_mentions_everything(self):
        stats = ServeStats(queries=3, deduplicated=1)
        stats.observe_latency(0.2)
        text = stats.describe(max_inflight=4)
        assert "queries served" in text
        assert "1 deduplicated" in text
        assert "QPS ceiling" in text


# -- SearchServer -----------------------------------------------------


def _serving_stack(indexed_client, **kwargs):
    cached = CachingObjectStore(indexed_client.store)
    lake = LakeTable.open(cached, indexed_client.lake.root)
    client = RottnestClient(cached, indexed_client.index_dir, lake)
    return SearchServer(client, **kwargs)


def _gate_executor(server):
    """Make the server's executor block until released; returns the
    (started, release) events."""
    real = server.executor.search
    started, release = threading.Event(), threading.Event()

    def gated(*args, **kwargs):
        started.set()
        assert release.wait(timeout=10)
        return real(*args, **kwargs)

    server.executor.search = gated
    return started, release


class TestSearchServer:
    def test_basic_query(self, indexed_client):
        with _serving_stack(indexed_client) as server:
            result = server.query("uuid", UuidQuery(event_uuid(1, 5)), k=3)
            assert len(result.matches) == 1
            assert server.stats.queries == 1
            assert server.stats.total_requests > 0
            assert server.stats.first_latency_s > 0

    def test_results_match_plain_client(self, indexed_client):
        query = UuidQuery(event_uuid(2, 9))
        expected = indexed_client.search("uuid", query, k=3)
        with _serving_stack(indexed_client) as server:
            got = server.query("uuid", query, k=3)
        assert [(m.file, m.row) for m in got.matches] == [
            (m.file, m.row) for m in expected.matches
        ]

    def test_shed_on_overload(self, indexed_client):
        server = _serving_stack(
            indexed_client, max_inflight=1, shed_on_overload=True
        )
        with server:
            started, release = _gate_executor(server)
            query = UuidQuery(event_uuid(1, 5))
            worker = threading.Thread(
                target=lambda: server.query("uuid", query, k=3)
            )
            worker.start()
            assert started.wait(timeout=5)
            with pytest.raises(ServerOverloaded):
                server.query("uuid", UuidQuery(event_uuid(1, 6)), k=3)
            assert server.stats.rejected == 1
            release.set()
            worker.join(timeout=10)
            assert server.stats.queries == 1

    def test_blocking_admission_queues_instead(self, indexed_client):
        server = _serving_stack(indexed_client, max_inflight=1)
        with server:
            results = []
            query = UuidQuery(event_uuid(1, 5))

            def go(i):
                results.append(
                    server.query("uuid", UuidQuery(event_uuid(1, i)), k=3)
                )

            threads = [threading.Thread(target=go, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(results) == 4
            assert server.stats.rejected == 0

    def test_identical_inflight_queries_deduplicate(self, indexed_client):
        server = _serving_stack(indexed_client, max_inflight=4)
        with server:
            started, release = _gate_executor(server)
            query = UuidQuery(event_uuid(1, 5))
            results = []

            def go():
                results.append(server.query("uuid", query, k=3))

            threads = [threading.Thread(target=go) for _ in range(3)]
            for t in threads:
                t.start()
            assert started.wait(timeout=5)
            deadline = time.monotonic() + 5
            while server._flights.shared < 2 and time.monotonic() < deadline:
                time.sleep(0.001)
            release.set()
            for t in threads:
                t.join(timeout=10)
            assert server.stats.queries == 3
            assert server.stats.deduplicated == 2
            first = [(m.file, m.row) for m in results[0].matches]
            assert all(
                [(m.file, m.row) for m in r.matches] == first for r in results
            )

    def test_warmup_preloads_hot_path(self, indexed_client):
        with _serving_stack(indexed_client) as server:
            assert server.warmup() == 3  # one index file per column
            cache = server.stats.cache
            warmed_misses = cache.misses
            server.query("uuid", UuidQuery(event_uuid(1, 5)), k=3)
            # The query's metadata/index-tail reads hit the warm cache.
            assert cache.hits > 0
            assert cache.misses - warmed_misses < warmed_misses
            assert server.stats.cache_hit_rate > 0

    def test_for_lake_assembles_full_stack(self, indexed_client):
        server = SearchServer.for_lake(
            indexed_client.store,
            indexed_client.index_dir,
            indexed_client.lake.root,
            cache_budget_bytes=32 << 20,
            max_searchers=2,
        )
        with server:
            assert isinstance(server.client.store, CachingObjectStore)
            assert server.client.store.budget_bytes == 32 << 20
            result = server.query("uuid", UuidQuery(event_uuid(1, 5)), k=3)
            assert len(result.matches) == 1
            assert server.stats.cache is server.client.store.cache_stats

    def test_finds_cache_stats_through_wrapper_chain(self, indexed_client):
        cached = CachingObjectStore(indexed_client.store)
        retrying = RetryingObjectStore(cached)
        lake = LakeTable.open(retrying, indexed_client.lake.root)
        client = RottnestClient(retrying, indexed_client.index_dir, lake)
        with SearchServer(client) as server:
            assert server.stats.cache is cached.cache_stats
        # And without a cache anywhere in the chain: stats stay None.
        bare = RottnestClient(
            indexed_client.store, indexed_client.index_dir, indexed_client.lake
        )
        with SearchServer(bare) as server:
            assert server.stats.cache is None
            assert server.stats.cache_hit_rate == 0.0

    def test_invalid_max_inflight(self, indexed_client):
        with pytest.raises(ServeError):
            SearchServer(indexed_client, max_inflight=0)


class TestDegradedServing:
    """Brute-force fallback when an index component read fails mid-query."""

    def _faulty_server(self, indexed_client):
        faulty = FaultyObjectStore(indexed_client.store)
        lake = LakeTable.open(faulty, indexed_client.lake.root)
        client = RottnestClient(faulty, indexed_client.index_dir, lake)
        return faulty, SearchServer(client, max_searchers=2)

    def test_index_read_failure_degrades_to_identical_answer(
        self, indexed_client
    ):
        faulty, server = self._faulty_server(indexed_client)
        query = UuidQuery(event_uuid(1, 5))
        with server:
            clean = server.query("uuid", query, k=3)
            assert server.stats.degraded == 0
            faulty.fail_next("GET", ".index")
            degraded = server.query("uuid", query, k=3)
            assert server.stats.degraded == 1
            assert [(m.file, m.row, bytes(m.value)) for m in degraded.matches] \
                == [(m.file, m.row, bytes(m.value)) for m in clean.matches]
            # Degraded mode planned no indices: pure scan.
            assert degraded.stats.index_files_queried == 0
            assert degraded.stats.files_brute_forced > 0

    def test_degraded_queries_counted_per_failure_not_forever(
        self, indexed_client
    ):
        faulty, server = self._faulty_server(indexed_client)
        query = UuidQuery(event_uuid(2, 17))
        with server:
            faulty.fail_next("GET", ".index")
            server.query("uuid", query, k=2)
            assert server.stats.degraded == 1
            # The fault was one-shot: the next query is served normally.
            healthy = server.query("uuid", query, k=2)
            assert server.stats.degraded == 1
            assert healthy.stats.index_files_queried > 0

    def test_simulated_crash_is_not_masked_as_degradation(
        self, indexed_client
    ):
        """SimulatedCrash is a chaos-harness signal, not a store fault;
        the serve layer must let it out instead of retrying around it."""
        faulty, server = self._faulty_server(indexed_client)
        with server:
            # Searches never mutate, so hit the one GET-adjacent seam we
            # can: a crash_after rule on mutations plus an index() call
            # through the same store (sanity that the exception escapes
            # wrapper layers unchanged).
            faulty.crash_after("PUT")
            with pytest.raises(SimulatedCrash):
                # "bloom" on uuid is the one index the fixture hasn't
                # built yet, so this actually uploads (and crashes).
                server.client.index("uuid", "bloom")
            assert server.stats.degraded == 0

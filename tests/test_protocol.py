"""Rottnest protocol: index/search/compact/vacuum and the two
invariants of §IV-D under crashes and concurrent lake operations."""

import hashlib

import numpy as np
import pytest

from repro.errors import IndexAborted, InjectedFault
from repro.core.client import RottnestClient
from repro.core.maintenance import compact_indices, vacuum_indices
from repro.core.queries import RegexQuery, SubstringQuery, UuidQuery, VectorQuery
from repro.formats.reader import ParquetFile
from repro.core.index_file import IndexFileReader
from repro.lake.table import LakeTable
from repro.storage.faults import FaultyObjectStore

from tests.conftest import EVENT_SCHEMA, event_batch, event_uuid


def check_invariants(client: RottnestClient) -> None:
    """Assert Existence and Consistency (Lemmas 1 and 2)."""
    records = client.meta.records()
    for record in records:
        # Existence: metadata references are physically present.
        assert client.store.exists(record.index_key), record.index_key
        # Consistency: the index correctly indexes covered files that
        # still exist — spot-check that every existing covered file's
        # page table matches the file's real layout.
        reader = IndexFileReader.open(client.store, record.index_key)
        for table in reader.directory.tables:
            if not client.store.exists(table.file_key):
                continue  # ¬exists(d_f): invariant vacuously holds
            pf = ParquetFile(client.store, table.file_key)
            from repro.formats.page_reader import build_page_table

            fresh = build_page_table(pf.metadata, table.file_key, reader.column)
            assert fresh.entries == table.entries


class TestIndexApi:
    def test_index_covers_new_files_only(self, client, event_lake):
        r1 = client.index("uuid", "uuid_trie")
        assert len(r1.covered_files) == 2
        assert client.index("uuid", "uuid_trie") is None  # nothing new
        event_lake.append(event_batch(100, seed=3))
        r2 = client.index("uuid", "uuid_trie")
        assert len(r2.covered_files) == 1

    def test_index_records_metadata(self, client):
        record = client.index("text", "fm")
        assert record.index_type == "fm"
        assert record.column == "text"
        assert record.num_rows == 600
        assert record.size > 0
        assert client.store.exists(record.index_key)

    def test_min_rows_abort(self, store, small_config):
        lake = LakeTable.create(store, "lake/tiny", EVENT_SCHEMA, small_config)
        lake.append(event_batch(50, seed=1))  # < IvfPqBuilder.min_rows
        client = RottnestClient(store, "idx/tiny", lake)
        with pytest.raises(IndexAborted):
            client.index("emb", "ivf_pq")
        # Search still works via brute force.
        res = client.search("emb", VectorQuery(np.zeros(16), nprobe=2), k=3)
        assert len(res.matches) == 3

    def test_timeout_aborts_without_commit(self, client, clock):
        client.index_timeout_s = 0.0
        clock.advance(1.0)  # any elapsed time now exceeds the timeout

        # Make the build take "time" by advancing the clock via a hooked
        # store operation is overkill: timeout is checked against start,
        # and the clock already moved past it once indexing begins.
        class TickingClock:
            def __init__(self, inner):
                self.inner = inner

            def now(self):
                self.inner.advance(1.0)
                return self.inner.now()

        client.store.clock = TickingClock(clock)
        with pytest.raises(IndexAborted):
            client.index("uuid", "uuid_trie")
        assert client.meta.records() == []

    def test_vanished_file_aborts(self, client, event_lake, store):
        # Simulate a lake vacuum racing the indexer: drop a data file
        # after the snapshot was taken.
        snap = event_lake.snapshot()
        store.delete(snap.file_paths[0])
        with pytest.raises(IndexAborted):
            client.index("uuid", "uuid_trie", snapshot=snap)
        check_invariants(client)


class TestSearchApi:
    def test_uuid_exact(self, indexed_client):
        key = event_uuid(1, 7)
        res = indexed_client.search("uuid", UuidQuery(key), k=5)
        assert len(res.matches) == 1
        assert bytes(res.matches[0].value) == key
        assert res.stats.files_brute_forced == 0

    def test_uuid_absent(self, indexed_client):
        res = indexed_client.search("uuid", UuidQuery(b"\x00" * 16), k=5)
        assert res.matches == []

    def test_substring_matches_verified(self, indexed_client, event_lake):
        docs = event_lake.to_pylist("text")
        needle = docs[10][:10]
        res = indexed_client.search("text", SubstringQuery(needle), k=100)
        expected = sum(needle in d for d in docs)
        assert len(res.matches) == expected
        assert all(needle in m.value for m in res.matches)

    def test_k_truncates(self, indexed_client):
        res = indexed_client.search("text", SubstringQuery("a"), k=4)
        assert len(res.matches) == 4

    def test_k_validated(self, indexed_client):
        from repro.errors import RottnestIndexError

        with pytest.raises(RottnestIndexError):
            indexed_client.search("text", SubstringQuery("a"), k=0)

    def test_vector_top1_is_exact_row(self, indexed_client, event_lake):
        target = event_batch(300, seed=1)["emb"][33]
        res = indexed_client.search(
            "emb", VectorQuery(target, nprobe=8, refine=64), k=3
        )
        assert res.matches[0].score == pytest.approx(0.0, abs=1e-9)

    def test_vector_matches_sorted(self, indexed_client):
        q = np.zeros(16, dtype=np.float32)
        res = indexed_client.search("emb", VectorQuery(q, nprobe=8), k=10)
        scores = [m.score for m in res.matches]
        assert scores == sorted(scores)

    def test_regex_brute_forces_everything(self, indexed_client, event_lake):
        res = indexed_client.search("text", RegexQuery(r"\bba\w+"), k=5)
        assert res.stats.index_files_queried == 0
        assert res.stats.files_brute_forced >= 1
        assert len(res.matches) == 5

    def test_unindexed_files_scanned_for_completeness(
        self, indexed_client, event_lake
    ):
        batch = event_batch(60, seed=9)
        batch["text"][5] = "UNIQUEMARKER only here"
        event_lake.append(batch)
        res = indexed_client.search("text", SubstringQuery("UNIQUEMARKER"), k=10)
        assert len(res.matches) == 1
        assert res.stats.files_brute_forced == 1

    def test_scoring_query_always_scans_unindexed(self, indexed_client, event_lake):
        event_lake.append(event_batch(60, seed=9))
        q = np.zeros(16, dtype=np.float32)
        res = indexed_client.search("emb", VectorQuery(q, nprobe=4), k=5)
        assert res.stats.files_brute_forced == 1

    def test_search_respects_snapshot(self, indexed_client, event_lake):
        old_version = event_lake.latest_version()
        batch = event_batch(60, seed=11)
        event_lake.append(batch)
        old_snap = event_lake.snapshot(old_version)
        key = hashlib.sha256(b"11-5").digest()[:16]
        # Present in latest, absent in the old snapshot.
        assert len(indexed_client.search("uuid", UuidQuery(key), k=5).matches) == 1
        res = indexed_client.search("uuid", UuidQuery(key), k=5, snapshot=old_snap)
        assert res.matches == []

    def test_deleted_rows_filtered(self, indexed_client, event_lake):
        key = event_uuid(2, 10)
        event_lake.delete_where("uuid", lambda v: bytes(v) == key)
        res = indexed_client.search("uuid", UuidQuery(key), k=5)
        assert res.matches == []

    def test_search_after_lake_compaction(self, indexed_client, event_lake):
        """Stale index locations are filtered; rows found via the new
        files' brute-force path (then reindexable)."""
        event_lake.compact(min_file_rows=1000, target_rows=5000)
        key = event_uuid(1, 3)
        res = indexed_client.search("uuid", UuidQuery(key), k=5)
        assert len(res.matches) == 1
        assert res.stats.files_brute_forced == 1  # the compacted file
        # Re-index the compacted file; no more brute force.
        indexed_client.index("uuid", "uuid_trie")
        res = indexed_client.search("uuid", UuidQuery(key), k=5)
        assert len(res.matches) == 1
        assert res.stats.files_brute_forced == 0

    def test_vacuumed_snapshot_fails_cleanly(self, indexed_client, event_lake):
        """Searching a snapshot whose files the lake physically removed
        raises an actionable error rather than a raw store failure."""
        from repro.errors import SnapshotNotFound

        old_snap = event_lake.snapshot()
        docs = event_lake.to_pylist("text")
        event_lake.append(event_batch(50, seed=30))
        event_lake.compact(min_file_rows=10_000, target_rows=100_000)
        event_lake.vacuum(retain_versions=1)
        # A present needle must probe a page of a removed file.
        with pytest.raises(SnapshotNotFound, match="no longer materialized"):
            indexed_client.search(
                "text", SubstringQuery(docs[0][:8]), k=5, snapshot=old_snap
            )
        # An absent needle never touches the data and still answers.
        res = indexed_client.search(
            "text", SubstringQuery("zzz-not-there"), k=5, snapshot=old_snap
        )
        assert res.matches == []

    def test_stats_have_trace(self, indexed_client):
        res = indexed_client.search("uuid", UuidQuery(event_uuid(1, 0)), k=1)
        assert res.stats.trace.total_requests > 0
        assert res.stats.estimated_latency() > 0


class TestCrashSafety:
    """Invariants hold across injected failures (§IV-D proof cases)."""

    def test_crash_before_upload(self, store, event_lake):
        faulty = FaultyObjectStore(store)
        client = RottnestClient(faulty, "idx/events", event_lake)
        faulty.fail_next("PUT", ".index")
        with pytest.raises(InjectedFault):
            client.index("uuid", "uuid_trie")
        assert client.meta.records() == []
        assert store.list("idx/events/files/") == []
        check_invariants(client)

    def test_crash_before_commit_leaves_orphan(self, store, event_lake, clock):
        faulty = FaultyObjectStore(store)
        client = RottnestClient(faulty, "idx/events", event_lake)
        faulty.fail_next("PUT", "_meta")
        with pytest.raises(InjectedFault):
            client.index("uuid", "uuid_trie")
        # Orphan index file exists but metadata is empty: consistent.
        assert client.meta.records() == []
        assert len(store.list("idx/events/files/")) == 1
        check_invariants(client)
        # Retry succeeds and re-indexes everything.
        record = client.index("uuid", "uuid_trie")
        assert len(record.covered_files) == 2
        check_invariants(client)
        # Vacuum must NOT remove the fresh orphan before the timeout...
        report = vacuum_indices(client, snapshot_id=0)
        assert len(report.deleted_objects) == 0
        # ...but does after it.
        clock.advance(client.index_timeout_s + 1)
        report = vacuum_indices(client, snapshot_id=0)
        assert len(report.deleted_objects) == 1
        check_invariants(client)

    def test_crash_during_vacuum_delete(self, store, event_lake, clock):
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("uuid", "uuid_trie")
        event_lake.append(event_batch(50, seed=4))
        client.index("uuid", "uuid_trie")
        compact_indices(client, "uuid", "uuid_trie")
        clock.advance(client.index_timeout_s + 1)

        faulty_client = RottnestClient(
            FaultyObjectStore(store), "idx/events", event_lake
        )
        faulty_client.store.fail_next("DELETE", ".index")
        with pytest.raises(InjectedFault):
            vacuum_indices(faulty_client, snapshot_id=0)
        # Metadata already shrank; some physical files linger. That is
        # exactly the allowed state: M ⊆ B.
        check_invariants(faulty_client)
        # A later vacuum finishes the cleanup.
        report = vacuum_indices(
            RottnestClient(store, "idx/events", event_lake), snapshot_id=0
        )
        check_invariants(faulty_client)

    def test_search_correct_with_orphan_index_files(self, store, event_lake):
        """Uncommitted index files are invisible to search."""
        faulty = FaultyObjectStore(store)
        client = RottnestClient(faulty, "idx/events", event_lake)
        faulty.fail_next("PUT", "_meta")
        with pytest.raises(InjectedFault):
            client.index("uuid", "uuid_trie")
        key = event_uuid(1, 5)
        res = client.search("uuid", UuidQuery(key), k=5)
        assert len(res.matches) == 1
        assert res.stats.index_files_queried == 0
        assert res.stats.files_brute_forced == 2


class TestConcurrentIndexers:
    """§IV-A: concurrent `index` on one column is safe (just wasteful)."""

    def test_duplicate_indexers_no_safety_violation(self, store, event_lake):
        # Two clients plan against the same snapshot before either
        # commits: both build, both commit; files end up double-covered.
        a = RottnestClient(store, "idx/events", event_lake)
        b = RottnestClient(store, "idx/events", event_lake)
        snap = event_lake.snapshot()
        rec_a = a.index("uuid", "uuid_trie", snapshot=snap)
        # b cannot see a's commit if it planned first; emulate by
        # inserting b's record for the same files directly, as its
        # commit path would.
        from repro.meta.metadata_table import IndexRecord

        builder_key = rec_a.index_key
        dup = IndexRecord(
            index_key=builder_key + ".dup",
            index_type="uuid_trie",
            column="uuid",
            covered_files=rec_a.covered_files,
            num_rows=rec_a.num_rows,
            size=rec_a.size,
            created_at=rec_a.created_at,
        )
        store.put(dup.index_key, store.get(builder_key))
        b.meta.insert([dup])
        check_invariants(a)
        # Search still returns exactly one verified match per key.
        key = event_uuid(1, 21)
        res = a.search("uuid", UuidQuery(key), k=10)
        assert len(res.matches) == 1
        # The plan uses one of the duplicates, not both.
        assert res.stats.index_files_queried == 1
        # Vacuum drops the redundant record.
        report = vacuum_indices(a, snapshot_id=event_lake.latest_version())
        assert len(report.deleted_records) == 1
        check_invariants(a)

    def test_interleaved_index_and_search(self, store, event_lake):
        """Searches concurrent with indexing see either the pre- or
        post-index plan, never a broken one."""
        client = RottnestClient(store, "idx/events", event_lake)
        key = event_uuid(2, 5)
        res_before = client.search("uuid", UuidQuery(key), k=5)
        assert len(res_before.matches) == 1
        assert res_before.stats.files_brute_forced == 2
        client.index("uuid", "uuid_trie")
        res_after = client.search("uuid", UuidQuery(key), k=5)
        assert len(res_after.matches) == 1
        assert res_after.stats.files_brute_forced == 0


class TestMaintenance:
    def test_compact_reduces_index_files_queried(self, store, event_lake):
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("uuid", "uuid_trie")
        for seed in (5, 6, 7):
            event_lake.append(event_batch(80, seed=seed))
            client.index("uuid", "uuid_trie")
        key = event_uuid(6, 3)
        before = client.search("uuid", UuidQuery(key), k=5)
        assert before.stats.index_files_queried == 4
        merged = compact_indices(client, "uuid", "uuid_trie")
        assert len(merged) == 1
        after = client.search("uuid", UuidQuery(key), k=5)
        assert after.stats.index_files_queried == 1
        assert len(after.matches) == len(before.matches) == 1
        check_invariants(client)

    def test_compact_below_two_is_noop(self, client):
        client.index("uuid", "uuid_trie")
        assert compact_indices(client, "uuid", "uuid_trie") == []

    def test_compact_respects_threshold(self, store, event_lake):
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("uuid", "uuid_trie")
        event_lake.append(event_batch(80, seed=5))
        client.index("uuid", "uuid_trie")
        # Thresold below both file sizes: nothing merges.
        assert (
            compact_indices(client, "uuid", "uuid_trie", threshold_bytes=10) == []
        )

    def test_compact_fm_uses_native_merge(self, store, event_lake):
        """FM compaction merges from the index files alone (BWT
        inversion), never touching the raw Parquet."""
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("text", "fm")
        event_lake.append(event_batch(80, seed=5))
        client.index("text", "fm")
        merged = compact_indices(client, "text", "fm")
        assert len(merged) == 1
        check_invariants(client)

    def test_compact_skips_records_for_vanished_files(
        self, store, event_lake
    ):
        """Index files covering only files gone from the snapshot are
        vacuum fodder, not compaction input."""
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("text", "fm")
        event_lake.append(event_batch(80, seed=5))
        client.index("text", "fm")
        event_lake.compact(min_file_rows=1000, target_rows=5000)
        event_lake.vacuum(retain_versions=1)
        assert compact_indices(client, "text", "fm") == []
        check_invariants(client)

    def test_compact_ivfpq_rebuilds_from_raw_pages(self, store, event_lake):
        """IVF-PQ compaction prefers re-reading raw Parquet (§IV-C
        allows it) and retrains over the exact vectors."""
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("emb", "ivf_pq", params={"nlist": 8, "m": 8})
        event_lake.append(event_batch(300, seed=5))
        client.index("emb", "ivf_pq", params={"nlist": 8, "m": 8})
        merged = compact_indices(client, "emb", "ivf_pq")
        assert len(merged) == 1
        check_invariants(client)
        import numpy as np

        target = event_batch(300, seed=5)["emb"][7]
        res = client.search(
            "emb", VectorQuery(target, nprobe=8, refine=64), k=3
        )
        assert res.matches[0].score == pytest.approx(0.0, abs=1e-9)
        assert res.stats.index_files_queried == 1

    def test_vacuum_drops_stale_and_uncovered(self, store, event_lake, clock):
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("uuid", "uuid_trie")
        event_lake.compact(min_file_rows=1000, target_rows=5000)
        client.index("uuid", "uuid_trie")  # covers the compacted file
        report = vacuum_indices(client, snapshot_id=event_lake.latest_version())
        # Old index only covers files gone from the latest snapshot.
        assert len(report.deleted_records) == 1
        assert len(report.kept) == 1
        clock.advance(client.index_timeout_s + 1)
        report = vacuum_indices(client, snapshot_id=event_lake.latest_version())
        assert len(report.deleted_objects) == 1
        check_invariants(client)
        key = event_uuid(2, 0)
        assert len(client.search("uuid", UuidQuery(key), k=5).matches) == 1

    def test_vacuum_keeps_indices_for_retained_history(
        self, store, event_lake, clock
    ):
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("uuid", "uuid_trie")
        event_lake.compact(min_file_rows=1000, target_rows=5000)
        client.index("uuid", "uuid_trie")
        # Retain from snapshot 0: the old files are still "active", so
        # the old index file stays.
        report = vacuum_indices(client, snapshot_id=0)
        assert report.deleted_records == []
        check_invariants(client)

    def test_compacted_search_results_identical(self, store, event_lake):
        client = RottnestClient(store, "idx/events", event_lake)
        client.index("text", "fm")
        event_lake.append(event_batch(70, seed=8))
        client.index("text", "fm")
        docs = event_lake.to_pylist("text")
        needles = [docs[0][:8], docs[-1][:8], "zzz-not-there"]
        before = {
            n: {(m.file, m.row) for m in
                client.search("text", SubstringQuery(n), k=500).matches}
            for n in needles
        }
        compact_indices(client, "text", "fm")
        for n in needles:
            after = {
                (m.file, m.row)
                for m in client.search("text", SubstringQuery(n), k=500).matches
            }
            assert after == before[n]

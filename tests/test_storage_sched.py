"""Batch I/O scheduler: plan shape, byte-identity, and fault scoping.

The scheduler's contract (``repro.storage.sched``) is that coalescing
is *invisible* except in wire-request counts: for any set of ``(key,
range)`` requests, any gap threshold, and any cache state, ``get_many``
returns bytes identical to issuing each range as its own ``get``.
Hypothesis drives the identity property directly against that naive
oracle — bare store, cache-wrapped store with arbitrary pre-warmed
entries, and fault-injected store — plus the failure-scoping property:
a failed merged GET fails **all and only** its constituent sub-ranges.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InjectedFault
from repro.obs.metrics import get_registry
from repro.serve.cache import CachingObjectStore
from repro.storage.faults import FaultyObjectStore
from repro.storage.object_store import InMemoryObjectStore
from repro.storage.sched import (
    DEFAULT_GAP_THRESHOLD,
    MergedGet,
    RangeRequest,
    execute_plan,
    get_many,
    plan_reads,
)

_OBJECTS = {
    "a": bytes(range(256)) * 4,  # 1024 bytes
    "b": b"x" * 512,
    "c": b"\x00\x01" * 100,  # 200 bytes
}


def _store() -> InMemoryObjectStore:
    store = InMemoryObjectStore()
    for key, data in _OBJECTS.items():
        store.put(key, data)
    return store


def _requests_for(key: str, size: int):
    """Strategy: an in-bounds (offset, length) request on ``key``."""
    return st.integers(min_value=0, max_value=size).flatmap(
        lambda offset: st.integers(min_value=0, max_value=size - offset).map(
            lambda length: RangeRequest(key, offset, length)
        )
    )


_any_request = st.one_of(
    *[_requests_for(key, len(data)) for key, data in _OBJECTS.items()]
)
_request_lists = st.lists(_any_request, max_size=24)
_gaps = st.one_of(
    st.integers(min_value=0, max_value=8),
    st.sampled_from([64, 4096, 10**6]),
)


def _naive(store, requests):
    """The oracle: one blocking GET per range, no coalescing."""
    return [store.get(r.key, (r.offset, r.length)) for r in requests]


class TestPlanReads:
    def test_adjacent_and_gapped_ranges_merge(self):
        plan = plan_reads(
            [
                RangeRequest("k", 0, 10),
                RangeRequest("k", 10, 5),  # exactly adjacent
                RangeRequest("k", 19, 6),  # gap of 4 <= threshold
            ],
            gap_threshold=4,
        )
        assert len(plan) == 1
        merged = plan[0]
        assert (merged.offset, merged.length) == (0, 25)
        assert [index for index, _ in merged.parts] == [0, 1, 2]
        assert merged.waste == 4  # bytes 15..19 nobody asked for

    def test_gap_beyond_threshold_splits(self):
        plan = plan_reads(
            [RangeRequest("k", 0, 10), RangeRequest("k", 15, 5)],
            gap_threshold=4,
        )
        assert [(m.offset, m.length) for m in plan] == [(0, 10), (15, 5)]
        assert all(m.waste == 0 for m in plan)

    def test_overlapping_ranges_merge_with_zero_waste(self):
        plan = plan_reads(
            [RangeRequest("k", 0, 20), RangeRequest("k", 5, 10)],
            gap_threshold=0,
        )
        assert len(plan) == 1
        assert plan[0].waste == 0

    def test_keys_never_merge(self):
        plan = plan_reads(
            [RangeRequest("a", 0, 10), RangeRequest("b", 10, 10)],
            gap_threshold=10**9,
        )
        assert len(plan) == 2

    def test_plan_is_deterministic_and_order_stable(self):
        requests = [
            RangeRequest("b", 100, 4),
            RangeRequest("a", 50, 4),
            RangeRequest("a", 0, 4),
            RangeRequest("b", 0, 4),
        ]
        plan = plan_reads(requests, gap_threshold=10**6)
        # Keys in first-appearance order, parts sorted by offset.
        assert [m.key for m in plan] == ["b", "a"]
        assert [index for index, _ in plan[0].parts] == [3, 0]
        assert plan == plan_reads(list(requests), gap_threshold=10**6)

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            RangeRequest("k", -1, 4)
        with pytest.raises(ValueError):
            RangeRequest("k", 0, -4)
        with pytest.raises(ValueError):
            plan_reads([RangeRequest("k", 0, 4)], gap_threshold=-1)

    def test_empty_plan(self):
        assert plan_reads([]) == []
        assert get_many(_store(), []) == []


class TestGetManyIdentity:
    @settings(max_examples=200, deadline=None)
    @given(requests=_request_lists, gap=_gaps)
    def test_byte_identical_to_naive_gets(self, requests, gap):
        store = _store()
        expected = _naive(store, requests)
        assert get_many(store, requests, gap_threshold=gap) == expected

    @settings(max_examples=150, deadline=None)
    @given(
        requests=_request_lists,
        gap=_gaps,
        warm=st.lists(_any_request, max_size=8),
        warm_whole=st.lists(st.sampled_from(sorted(_OBJECTS)), max_size=3),
    )
    def test_byte_identical_through_cache(
        self, requests, gap, warm, warm_whole
    ):
        """Any cache state: range entries, whole-object entries, cold."""
        cache = CachingObjectStore(_store(), budget_bytes=1 << 20)
        for request in warm:
            cache.get(request.key, (request.offset, request.length))
        for key in warm_whole:
            cache.get(key)
        expected = [bytearray(_OBJECTS[r.key][r.offset : r.end]) for r in requests]
        got = cache.get_many(requests, gap_threshold=gap)
        assert [bytes(e) for e in expected] == [bytes(g) for g in got]
        # Repeats converge: each repeat re-plans only its misses, so the
        # merged ranges shift for a few rounds while entries accumulate,
        # but within |requests| repeats a batch reaches a fixpoint that
        # issues zero new wire GETs. (Zero-length requests are exempt —
        # empty payloads are never admitted.)
        if all(r.length > 0 for r in requests):
            for _ in range(len(requests)):
                assert cache.get_many(requests, gap_threshold=gap) == got
            before = cache.inner.stats.snapshot().gets
            assert cache.get_many(requests, gap_threshold=gap) == got
            assert cache.inner.stats.snapshot().gets == before

    def test_requests_recorded_at_merged_granularity(self):
        store = _store()
        requests = [
            RangeRequest("a", 0, 8),
            RangeRequest("a", 8, 8),
            RangeRequest("b", 0, 8),
        ]
        before = store.stats.snapshot()
        get_many(store, requests, gap_threshold=0)
        delta_gets = store.stats.snapshot().gets - before.gets
        assert delta_gets == 2  # one merged GET for "a", one for "b"

    def test_waste_counter_reconciles_with_plan(self):
        waste = get_registry().get("io_coalesced_waste_bytes_total")
        requests = [RangeRequest("a", 0, 4), RangeRequest("a", 10, 4)]
        plan = plan_reads(requests, gap_threshold=8)
        assert sum(m.waste for m in plan) == 6
        before = waste.value()
        execute_plan(_store(), requests, plan)
        assert waste.value() - before == 6
        # IOStats billed the merged length; waste only hit the counter.
        store = _store()
        start = store.stats.snapshot().bytes_read
        execute_plan(store, requests, plan_reads(requests, gap_threshold=8))
        assert store.stats.snapshot().bytes_read - start == 14


class TestFaultScoping:
    @settings(max_examples=150, deadline=None)
    @given(
        requests=st.lists(_any_request, min_size=1, max_size=24),
        gap=_gaps,
        data=st.data(),
    )
    def test_failed_merged_get_fails_exactly_its_subranges(
        self, requests, gap, data
    ):
        """Kill the Nth merged GET: its parts all fail, nothing else."""
        plan = plan_reads(requests, gap_threshold=gap)
        victim = data.draw(
            st.integers(min_value=0, max_value=len(plan) - 1), label="victim"
        )
        doomed = {index for index, _ in plan[victim].parts}

        faulty = FaultyObjectStore(_store())
        faulty.fail_next("GET", countdown=victim)
        results = faulty.get_many(
            requests, gap_threshold=gap, return_exceptions=True
        )
        for index, request in enumerate(requests):
            if index in doomed:
                assert isinstance(results[index], InjectedFault)
            else:
                data_bytes = _OBJECTS[request.key]
                assert results[index] == data_bytes[request.offset : request.end]

    def test_without_return_exceptions_the_fault_raises(self):
        faulty = FaultyObjectStore(_store())
        faulty.fail_next("GET")
        with pytest.raises(InjectedFault):
            faulty.get_many([RangeRequest("a", 0, 4)])

    def test_slice_maps_parts_back(self):
        merged = MergedGet(
            key="k",
            offset=10,
            length=20,
            parts=((0, RangeRequest("k", 12, 4)), (1, RangeRequest("k", 20, 5))),
            waste=11,
        )
        payload = bytes(range(10, 30))
        assert merged.slice(0, payload) == bytes(range(12, 16))
        assert merged.slice(1, payload) == bytes(range(20, 25))

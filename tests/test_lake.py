"""Data lake: log, snapshots, deletion vectors, table operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommitConflict, LakeError, SnapshotNotFound
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.actions import (
    AddFile,
    RemoveFile,
    SetDeletionVector,
    SetSchema,
    actions_from_bytes,
    actions_to_bytes,
)
from repro.lake.deletion import DeletionVector
from repro.lake.log import TransactionLog
from repro.lake.snapshot import replay
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore

SIMPLE = Schema.of(Field("id", ColumnType.INT64), Field("t", ColumnType.STRING))


def make_batch(lo, hi):
    return {"id": list(range(lo, hi)), "t": [f"row {i}" for i in range(lo, hi)]}


@pytest.fixture
def store():
    return InMemoryObjectStore()


@pytest.fixture
def table(store):
    cfg = TableConfig(row_group_rows=50, page_target_bytes=512)
    return LakeTable.create(store, "lake/t", SIMPLE, cfg)


class TestActions:
    def test_serialization_roundtrip(self):
        actions = [
            SetSchema(schema=SIMPLE),
            AddFile(path="p/a", num_rows=10, size=100),
            RemoveFile(path="p/a"),
            SetDeletionVector(data_path="p/b", dv_path="d/x"),
        ]
        assert actions_from_bytes(actions_to_bytes(actions)) == actions

    def test_corrupt_entry_rejected(self):
        with pytest.raises(LakeError):
            actions_from_bytes(b"not json")

    def test_unknown_action_rejected(self):
        with pytest.raises(LakeError):
            actions_from_bytes(b'[{"action": "explode"}]')


class TestTransactionLog:
    def test_empty_log(self, store):
        log = TransactionLog(store, "lake/x")
        assert log.latest_version() == -1

    def test_commit_sequence(self, store):
        log = TransactionLog(store, "lake/x")
        v0 = log.commit([AddFile(path="a", num_rows=1, size=1)])
        v1 = log.commit([AddFile(path="b", num_rows=1, size=1)])
        assert (v0, v1) == (0, 1)
        assert log.latest_version() == 1

    def test_try_commit_conflict(self, store):
        log = TransactionLog(store, "lake/x")
        log.try_commit(0, [AddFile(path="a", num_rows=1, size=1)])
        with pytest.raises(CommitConflict):
            log.try_commit(0, [AddFile(path="b", num_rows=1, size=1)])

    def test_conflict_preserves_winner(self, store):
        log = TransactionLog(store, "lake/x")
        log.try_commit(0, [AddFile(path="winner", num_rows=1, size=1)])
        try:
            log.try_commit(0, [AddFile(path="loser", num_rows=1, size=1)])
        except CommitConflict:
            pass
        actions = log.read_version(0)
        assert actions[0].path == "winner"

    def test_read_missing_version(self, store):
        log = TransactionLog(store, "lake/x")
        with pytest.raises(SnapshotNotFound):
            log.read_version(5)
        with pytest.raises(SnapshotNotFound):
            log.read_all(up_to=3)

    def test_commit_retries_past_conflicts(self, store):
        log_a = TransactionLog(store, "lake/x")
        log_b = TransactionLog(store, "lake/x")
        log_a.commit([AddFile(path="a", num_rows=1, size=1)])
        # b computed latest before a's commit; commit() re-reads and wins
        # the next slot.
        v = log_b.commit([AddFile(path="b", num_rows=1, size=1)])
        assert v == 1


class TestReplay:
    def test_add_remove(self):
        snap = replay(
            2,
            [
                [SetSchema(schema=SIMPLE)],
                [AddFile(path="a", num_rows=5, size=50)],
                [RemoveFile(path="a"), AddFile(path="b", num_rows=7, size=70)],
            ],
        )
        assert snap.file_paths == ["b"]
        assert snap.num_rows == 7
        assert snap.total_bytes == 70

    def test_double_add_rejected(self):
        with pytest.raises(LakeError):
            replay(
                1,
                [
                    [SetSchema(schema=SIMPLE)],
                    [
                        AddFile(path="a", num_rows=1, size=1),
                        AddFile(path="a", num_rows=1, size=1),
                    ],
                ],
            )

    def test_remove_unknown_rejected(self):
        with pytest.raises(LakeError):
            replay(1, [[SetSchema(schema=SIMPLE)], [RemoveFile(path="a")]])

    def test_dv_for_unknown_file_rejected(self):
        with pytest.raises(LakeError):
            replay(
                1,
                [
                    [SetSchema(schema=SIMPLE)],
                    [SetDeletionVector(data_path="a", dv_path="d")],
                ],
            )

    def test_dv_cleared_by_remove(self):
        snap = replay(
            2,
            [
                [SetSchema(schema=SIMPLE), AddFile(path="a", num_rows=1, size=1)],
                [SetDeletionVector(data_path="a", dv_path="d")],
                [RemoveFile(path="a"), AddFile(path="b", num_rows=1, size=1)],
            ],
        )
        assert snap.deletion_vectors == {}

    def test_dv_cleared_by_empty_path(self):
        snap = replay(
            2,
            [
                [SetSchema(schema=SIMPLE), AddFile(path="a", num_rows=1, size=1)],
                [SetDeletionVector(data_path="a", dv_path="d")],
                [SetDeletionVector(data_path="a", dv_path="")],
            ],
        )
        assert snap.deletion_vectors == {}

    def test_no_schema_rejected(self):
        with pytest.raises(LakeError):
            replay(0, [[AddFile(path="a", num_rows=1, size=1)]])

    def test_entry_lookup(self):
        snap = replay(
            0, [[SetSchema(schema=SIMPLE), AddFile(path="a", num_rows=3, size=9)]]
        )
        assert snap.entry("a").num_rows == 3
        assert snap.contains("a")
        with pytest.raises(LakeError):
            snap.entry("b")


class TestDeletionVector:
    def test_membership(self):
        dv = DeletionVector([3, 1, 7])
        assert 3 in dv and 1 in dv and 0 not in dv
        assert len(dv) == 3

    def test_union_and_filter(self):
        dv = DeletionVector([1]).union(DeletionVector([2]))
        assert dv.filter_alive([0, 1, 2, 3]) == [0, 3]

    def test_serialize_roundtrip(self):
        dv = DeletionVector([0, 5, 1000000, 17])
        assert DeletionVector.deserialize(dv.serialize()) == dv

    def test_empty_roundtrip(self):
        dv = DeletionVector()
        assert DeletionVector.deserialize(dv.serialize()) == dv
        assert len(dv) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DeletionVector([-1])

    def test_bad_magic(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            DeletionVector.deserialize(b"XXXX\x00")

    @given(st.sets(st.integers(0, 10_000), max_size=200))
    def test_roundtrip_property(self, rows):
        dv = DeletionVector(rows)
        assert DeletionVector.deserialize(dv.serialize()).rows == frozenset(rows)


class TestLakeTable:
    def test_create_twice_rejected(self, store, table):
        with pytest.raises(LakeError):
            LakeTable.create(store, "lake/t", SIMPLE)

    def test_open_missing_rejected(self, store):
        with pytest.raises(LakeError):
            LakeTable.open(store, "lake/none")

    def test_open_existing(self, store, table):
        table.append(make_batch(0, 10))
        reopened = LakeTable.open(store, "lake/t")
        assert reopened.to_pylist("id") == list(range(10))

    def test_append_and_scan(self, table):
        table.append(make_batch(0, 100))
        table.append(make_batch(100, 150))
        assert table.to_pylist("id") == list(range(150))

    def test_time_travel(self, table):
        v1 = table.append(make_batch(0, 10))
        table.append(make_batch(10, 20))
        old = table.snapshot(v1)
        assert old.num_rows == 10
        assert table.snapshot().num_rows == 20

    def test_delete_where(self, table):
        table.append(make_batch(0, 100))
        n = table.delete_where("id", lambda v: v % 10 == 0)
        assert n == 10
        assert sorted(table.to_pylist("id")) == [
            i for i in range(100) if i % 10 != 0
        ]

    def test_delete_twice_counts_once(self, table):
        table.append(make_batch(0, 20))
        assert table.delete_where("id", lambda v: v < 5) == 5
        assert table.delete_where("id", lambda v: v < 5) == 0

    def test_delete_nothing_commits_nothing(self, table):
        table.append(make_batch(0, 10))
        before = table.latest_version()
        assert table.delete_where("id", lambda v: v > 999) == 0
        assert table.latest_version() == before

    def test_compact_merges_small_files(self, table):
        for i in range(4):
            table.append(make_batch(i * 10, (i + 1) * 10))
        new = table.compact(min_file_rows=50, target_rows=100)
        assert len(new) == 1
        snap = table.snapshot()
        assert len(snap.files) == 1
        assert sorted(table.to_pylist("id")) == list(range(40))

    def test_compact_drops_deleted_rows(self, table):
        table.append(make_batch(0, 10))
        table.append(make_batch(10, 20))
        table.delete_where("id", lambda v: v == 5)
        table.compact(min_file_rows=50, target_rows=100)
        snap = table.snapshot()
        assert snap.num_rows == 19  # physically gone now
        assert snap.deletion_vectors == {}
        assert 5 not in table.to_pylist("id")

    def test_compact_noop_single_file(self, table):
        table.append(make_batch(0, 10))
        assert table.compact(min_file_rows=50, target_rows=100) == []

    def test_compact_bad_args(self, table):
        with pytest.raises(LakeError):
            table.compact(min_file_rows=10, target_rows=5)

    def test_rewrite_sorted(self, table):
        table.append({"id": [5, 3, 9], "t": ["e", "c", "i"]})
        table.append({"id": [1, 7], "t": ["a", "g"]})
        table.rewrite_sorted("id")
        assert table.to_pylist("id") == [1, 3, 5, 7, 9]
        assert table.to_pylist("t") == ["a", "c", "e", "g", "i"]

    def test_vacuum_removes_dead_files(self, store, table):
        table.append(make_batch(0, 10))
        table.append(make_batch(10, 20))
        table.compact(min_file_rows=50, target_rows=100)
        data_keys_before = len(store.list("lake/t/data/"))
        removed = table.vacuum(retain_versions=1)
        assert len(removed) == 2
        assert len(store.list("lake/t/data/")) == data_keys_before - 2
        # Table still readable.
        assert sorted(table.to_pylist("id")) == list(range(20))

    def test_vacuum_retains_history(self, store, table):
        table.append(make_batch(0, 10))
        table.append(make_batch(10, 20))
        table.compact(min_file_rows=50, target_rows=100)
        removed = table.vacuum(retain_versions=10)
        assert removed == []  # old snapshots still in retention

    def test_vacuum_requires_retention(self, table):
        with pytest.raises(LakeError):
            table.vacuum(retain_versions=0)

    def test_files_since(self, table):
        table.append(make_batch(0, 10))
        old_files = set(table.snapshot().file_paths)
        table.compact(min_file_rows=5, target_rows=100)  # no-op, 1 file
        table.append(make_batch(10, 20))
        all_files = table.files_since(0)
        assert old_files <= all_files
        latest_only = table.files_since(table.latest_version())
        assert latest_only == set(table.snapshot().file_paths)

    def test_schema_property(self, table):
        assert table.schema == SIMPLE

    def test_concurrent_appends_both_land(self, store, table):
        other = LakeTable.open(store, "lake/t", table.config)
        table.append(make_batch(0, 5))
        other.append(make_batch(5, 10))
        assert sorted(table.to_pylist("id")) == list(range(10))


class TestLogCheckpoints:
    """Delta-style lake log checkpoints: snapshots read checkpoint+tail."""

    def _table(self, store, interval):
        cfg = TableConfig(
            row_group_rows=50, page_target_bytes=512,
            checkpoint_interval=interval,
        )
        return LakeTable.create(store, "lake/cp", SIMPLE, cfg)

    def test_checkpoint_written_at_interval(self, store):
        table = self._table(store, interval=4)
        for i in range(4):
            table.append(make_batch(i * 5, (i + 1) * 5))
        # Versions 0 (schema) + 4 appends; checkpoint at v3.
        assert table.log.latest_checkpoint_version(100) == 3

    def test_snapshot_equals_full_replay(self, store):
        table = self._table(store, interval=3)
        for i in range(8):
            table.append(make_batch(i * 5, (i + 1) * 5))
        table.delete_where("id", lambda v: v % 7 == 0)
        from repro.lake.snapshot import replay

        full = replay(
            table.latest_version(), table.log.read_all()
        )
        fast = table.snapshot()
        assert fast == full

    def test_snapshot_reads_only_tail(self, store):
        table = self._table(store, interval=5)
        for i in range(10):
            table.append(make_batch(i * 5, (i + 1) * 5))
        before = store.stats.snapshot()
        table.snapshot()
        delta = store.stats.delta(before)
        # 1 checkpoint + <= interval tail entries, not all 11 versions.
        assert delta.gets <= 1 + 5

    def test_time_travel_before_checkpoint(self, store):
        table = self._table(store, interval=3)
        for i in range(7):
            table.append(make_batch(i * 5, (i + 1) * 5))
        old = table.snapshot(1)  # before the first checkpoint
        assert old.num_rows == 5

    def test_checkpoint_snapshot_roundtrip(self, store):
        table = self._table(store, interval=2)
        table.append(make_batch(0, 10))
        table.delete_where("id", lambda v: v == 3)
        snap = table.snapshot()
        from repro.lake.snapshot import Snapshot

        assert Snapshot.from_json(snap.to_json()) == snap

    def test_fresh_instance_uses_checkpoints(self, store):
        table = self._table(store, interval=2)
        for i in range(6):
            table.append(make_batch(i * 5, (i + 1) * 5))
        reopened = LakeTable.open(store, "lake/cp", table.config)
        assert reopened.snapshot().num_rows == 30


@settings(max_examples=15, deadline=None)
@given(
    batches=st.lists(st.integers(1, 30), min_size=1, max_size=5),
    delete_mod=st.integers(2, 7),
)
def test_lake_contents_invariant_property(batches, delete_mod):
    """Appends + deletes + compaction preserve exactly the live rows."""
    store = InMemoryObjectStore()
    table = LakeTable.create(
        store, "lake/p", SIMPLE, TableConfig(row_group_rows=16, page_target_bytes=256)
    )
    cursor = 0
    for b in batches:
        table.append(make_batch(cursor, cursor + b))
        cursor += b
    table.delete_where("id", lambda v: v % delete_mod == 0)
    expected = [i for i in range(cursor) if i % delete_mod != 0]
    assert sorted(table.to_pylist("id")) == expected
    table.compact(min_file_rows=100, target_rows=500)
    assert sorted(table.to_pylist("id")) == expected

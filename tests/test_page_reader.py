"""Rottnest's page-granular reader and page tables (§V-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats.page_reader import (
    PageTable,
    build_page_table,
    read_page,
    read_rows_via_pages,
)
from repro.formats.parquet import write_parquet
from repro.formats.reader import ParquetFile
from repro.formats.schema import ColumnType, Field, Schema
from repro.storage.object_store import InMemoryObjectStore
from repro.util.binio import BinaryReader, BinaryWriter


@pytest.fixture
def stored_file():
    schema = Schema.of(
        Field("id", ColumnType.INT64), Field("text", ColumnType.STRING)
    )
    columns = {
        "id": list(range(500)),
        "text": [f"value {i} padding padding" for i in range(500)],
    }
    result = write_parquet(
        schema, columns, row_group_rows=150, page_target_bytes=800
    )
    store = InMemoryObjectStore()
    store.put("d.parquet", result.data)
    return store, result, schema, columns


class TestPageTable:
    def test_build_covers_all_rows(self, stored_file):
        _, result, _, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        assert table.num_rows == 500
        assert len(table) > 4
        # Entries tile the file row range.
        cursor = 0
        for e in table.entries:
            assert e.row_start == cursor
            cursor += e.num_values
        assert cursor == 500

    def test_page_of_row(self, stored_file):
        _, result, _, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        for row in [0, 1, 149, 150, 499]:
            pid = table.page_of_row(row)
            e = table.entry(pid)
            assert e.row_start <= row < e.row_start + e.num_values

    def test_page_of_row_out_of_range(self, stored_file):
        _, result, _, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        with pytest.raises(FormatError):
            table.page_of_row(500)

    def test_entry_out_of_range(self, stored_file):
        _, result, _, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        with pytest.raises(FormatError):
            table.entry(len(table))

    def test_missing_column(self, stored_file):
        _, result, _, _ = stored_file
        with pytest.raises(FormatError):
            build_page_table(result.metadata, "d.parquet", "nope")

    def test_serialize_roundtrip(self, stored_file):
        _, result, _, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        w = BinaryWriter()
        table.serialize(w)
        back = PageTable.deserialize(BinaryReader(w.getvalue()))
        assert back.file_key == table.file_key
        assert back.column == table.column
        assert back.entries == table.entries


class TestPageReads:
    def test_read_page_values(self, stored_file):
        store, result, schema, columns = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        entry = table.entry(2)
        row_start, values = read_page(store, schema.field("text"), entry)
        assert values == columns["text"][row_start : row_start + len(values)]

    def test_read_page_bypasses_footer(self, stored_file):
        """One byte-range GET of exactly the page, nothing else."""
        store, result, schema, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        entry = table.entry(1)
        before = store.stats.snapshot()
        read_page(store, schema.field("text"), entry)
        delta = store.stats.delta(before)
        assert delta.gets == 1
        assert delta.heads == 0
        assert delta.bytes_read == entry.compressed_size

    def test_page_read_much_smaller_than_chunk(self, stored_file):
        """The §V-A claim: page IO << chunk IO for point lookups."""
        store, result, schema, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        chunk_size = result.metadata.row_groups[0].chunk("text").total_compressed_size
        assert table.entry(0).compressed_size < chunk_size

    def test_read_rows_via_pages_matches_traditional(self, stored_file):
        store, result, schema, columns = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        rows = [0, 7, 149, 150, 300, 499]
        got = read_rows_via_pages(store, schema.field("text"), table, rows)
        pf = ParquetFile(store, "d.parquet")
        assert got == pf.read_rows("text", rows)

    def test_read_rows_via_pages_empty(self, stored_file):
        store, result, schema, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        assert read_rows_via_pages(store, schema.field("text"), table, []) == {}

    def test_rows_in_same_page_read_once(self, stored_file):
        store, result, schema, _ = stored_file
        table = build_page_table(result.metadata, "d.parquet", "text")
        e0 = table.entry(0)
        rows = list(range(min(3, e0.num_values)))
        before = store.stats.snapshot()
        read_rows_via_pages(store, schema.field("text"), table, rows)
        assert store.stats.delta(before).gets == 1

    def test_vector_pages(self):
        schema = Schema.of(Field("v", ColumnType.VECTOR, vector_dim=4))
        vecs = np.arange(400, dtype=np.float32).reshape(100, 4)
        result = write_parquet(
            schema, {"v": vecs}, row_group_rows=40, page_target_bytes=200
        )
        store = InMemoryObjectStore()
        store.put("v.parquet", result.data)
        table = build_page_table(result.metadata, "v.parquet", "v")
        got = read_rows_via_pages(store, schema.field("v"), table, [0, 55, 99])
        for r in (0, 55, 99):
            assert np.array_equal(got[r], vecs[r])


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(st.integers(0, 499), min_size=1, max_size=30),
    page_bytes=st.integers(100, 3000),
)
def test_page_reads_equal_chunk_reads_property(rows, page_bytes):
    """Both readers agree on arbitrary row subsets and page geometry."""
    schema = Schema.of(Field("t", ColumnType.STRING))
    values = [f"item {i} " + "z" * (i % 23) for i in range(500)]
    result = write_parquet(
        schema, {"t": values}, row_group_rows=170, page_target_bytes=page_bytes
    )
    store = InMemoryObjectStore()
    store.put("f", result.data)
    table = build_page_table(result.metadata, "f", "t")
    via_pages = read_rows_via_pages(store, schema.field("t"), table, rows)
    via_chunks = ParquetFile(store, "f").read_rows("t", rows)
    assert via_pages == via_chunks

"""Closed-loop cracking simulation: observe -> rank -> act, under oracle.

The headline harness for ISSUE 9: a seeded Zipf trace replays against a
:class:`~repro.crack.controller.CrackController` on a sim clock, with
every search running under a tracer whose finished spans are the only
signal the controller sees. After every tick the suite re-asks the
tick's queries both ways — through whatever indices exist *right now*
and with ``use_indices=False`` — so "results match the brute-force
oracle mid-crack" is checked at every intermediate lake state, not just
at convergence. The other pinned properties, per seed:

* the top-``hot_k`` Zipf files are fully covered within a bounded
  number of ticks;
* total live index bytes stay under a fraction of the eager twin's
  (the cold tail is never built);
* at least one cold file is never indexed at all;
* a controller restarted mid-run with an *empty* heat map re-learns
  the workload and converges to the same coverage without re-doing
  committed work (the heat map is a hint, not durable state).

Everything is deterministic given the seed; a companion test pins two
identical runs to identical coverage trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.client import RottnestClient
from repro.core.maintenance import covering_records
from repro.core.queries import UuidQuery, VectorQuery
from repro.crack import (
    CrackController,
    CrackingPolicy,
    HeatMap,
)
from repro.formats.schema import ColumnType, Field as SchemaField, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.obs.trace import Tracer, use_tracer
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.uuids import UuidWorkload

from tests.conftest import EVENT_SCHEMA, event_batch

SCHEMA = Schema.of(SchemaField("uuid", ColumnType.BINARY))
COLUMN = "uuid"
INDEX_TYPE = "uuid_trie"
FILES = 12
ROWS = 40
TICKS = 10
QUERIES_PER_TICK = 12
ZIPF_S = 1.1
TICK_INTERVAL_S = 600.0
SEEDS = [7, 23, 101]


def _deployment(seed: int):
    clock = SimClock(start=1_000_000.0)
    store = InMemoryObjectStore(clock=clock)
    lake = LakeTable.create(
        store,
        "lake/sim",
        SCHEMA,
        TableConfig(row_group_rows=16, page_target_bytes=2048),
    )
    gen = UuidWorkload(seed=seed)
    batches = [gen.batch(ROWS) for _ in range(FILES)]
    for batch in batches:
        lake.append({COLUMN: batch})
    client = RottnestClient(store, "idx/sim", lake)
    return clock, store, client, batches


def _trace(seed: int) -> list[list[tuple[int, int]]]:
    rng = np.random.default_rng(seed)
    weights = np.arange(1, FILES + 1, dtype=np.float64) ** (-ZIPF_S)
    probs = weights / weights.sum()
    return [
        [
            (int(rng.choice(FILES, p=probs)), int(rng.integers(ROWS)))
            for _ in range(QUERIES_PER_TICK)
        ]
        for _ in range(TICKS)
    ]


def _controller(client: RottnestClient) -> CrackController:
    return CrackController(
        client,
        [(COLUMN, INDEX_TYPE)],
        cracking=CrackingPolicy(hotness_floor=6.0),
        heat=HeatMap(half_life_s=TICK_INTERVAL_S),
    )


def _live_index_bytes(client: RottnestClient) -> int:
    return sum(
        r.size for r in covering_records(client, COLUMN, INDEX_TYPE)
    )


def _rowset(matches):
    return {(m.file, m.row) for m in matches}


def _run(seed: int, *, restart_at: int | None = None):
    """One closed-loop run; returns (client, covered_by_tick list)."""
    clock, store, client, batches = _deployment(seed)
    controller = _controller(client)
    tracer = Tracer(clock=clock)
    hot_k = max(1, FILES // 4)
    hot_paths = {
        client.lake.snapshot().files[rank].path for rank in range(hot_k)
    }
    covered_by_tick = []
    for tick_no, tick in enumerate(_trace(seed)):
        if restart_at is not None and tick_no == restart_at:
            # Process death: the heat map is gone, the store is not.
            controller = _controller(client)
        asked = []
        with use_tracer(tracer):
            for fi, ri in tick:
                key = batches[fi][ri]
                res = client.search(COLUMN, UuidQuery(key), k=1)
                asked.append((key, _rowset(res.matches)))
        controller.observe(tracer.pop_finished())
        controller.tick()
        # Oracle check mid-crack: the lake's index state just changed
        # under the workload's feet; both the answers captured before
        # the tick and the answers through the fresh indices must equal
        # the brute-force truth.
        for key, seen in asked:
            oracle = client.search(
                COLUMN, UuidQuery(key), k=1, use_indices=False
            )
            indexed = client.search(COLUMN, UuidQuery(key), k=1)
            assert _rowset(oracle.matches) == seen
            assert _rowset(indexed.matches) == _rowset(oracle.matches)
        covered = set(client.meta.indexed_files(COLUMN, INDEX_TYPE))
        covered_by_tick.append(frozenset(covered))
        clock.advance(TICK_INTERVAL_S)
    return client, hot_paths, covered_by_tick


@pytest.mark.parametrize("seed", SEEDS)
class TestCrackSimulation:
    def test_converges_on_the_hot_set_and_skips_the_cold_tail(self, seed):
        client, hot_paths, covered_by_tick = _run(seed)
        cover_tick = next(
            (
                i
                for i, covered in enumerate(covered_by_tick)
                if hot_paths <= covered
            ),
            None,
        )
        assert cover_tick is not None, "hot set never fully covered"
        assert cover_tick < TICKS // 2, (
            f"hot-set coverage took {cover_tick + 1} ticks"
        )
        # Coverage is monotone: the controller never un-indexes.
        for earlier, later in zip(covered_by_tick, covered_by_tick[1:]):
            assert earlier <= later
        # The cold tail stays brute-force.
        all_paths = {f.path for f in client.lake.snapshot().files}
        assert len(all_paths - covered_by_tick[-1]) >= 1

    def test_spends_a_fraction_of_eager_index_bytes(self, seed):
        client, _, _ = _run(seed)
        cracked_bytes = _live_index_bytes(client)
        _, _, eager_client, _ = _deployment(seed)
        eager_client.index(COLUMN, INDEX_TYPE)
        eager_bytes = _live_index_bytes(eager_client)
        assert 0 < cracked_bytes <= 0.8 * eager_bytes

    def test_restart_with_empty_heat_map_still_converges(self, seed):
        client, hot_paths, covered_by_tick = _run(
            seed, restart_at=TICKS // 2
        )
        assert hot_paths <= covered_by_tick[-1]
        # Re-learning must not redo committed work: every covered file
        # is covered by exactly one live record's file set.
        cover = covering_records(client, COLUMN, INDEX_TYPE)
        counts: dict[str, int] = {}
        for record in cover:
            for path in record.covered_files:
                counts[path] = counts.get(path, 0) + 1
        assert counts and set(counts.values()) == {1}

    def test_same_seed_replays_identically(self, seed):
        # Physical file names carry fresh entropy per deployment, so
        # compare coverage by append rank, which is seed-stable.
        def ranks(client, covered_by_tick):
            order = {
                f.path: i
                for i, f in enumerate(client.lake.snapshot().files)
            }
            return [
                frozenset(order[p] for p in covered)
                for covered in covered_by_tick
            ]

        client_a, _, first = _run(seed)
        client_b, _, second = _run(seed)
        assert ranks(client_a, first) == ranks(client_b, second)


class TestCrackSimulationVectors:
    """The refinement half of the loop: probes heat cells, cells split."""

    def test_probe_driven_refinement_stays_exact(self):
        clock = SimClock(start=1_000_000.0)
        store = InMemoryObjectStore(clock=clock)
        lake = LakeTable.create(
            store,
            "lake/sim-vec",
            EVENT_SCHEMA,
            TableConfig(row_group_rows=64, page_target_bytes=4096),
        )
        lake.append(event_batch(260, seed=1))
        client = RottnestClient(store, "idx/sim-vec", lake)
        client.index("emb", "ivf_pq", params={"nlist": 4, "m": 8})
        before = covering_records(client, "emb", "ivf_pq")[0]

        controller = CrackController(
            client,
            [("emb", "ivf_pq")],
            cracking=CrackingPolicy(
                hotness_floor=0.5,
                refine_min_cell_heat=4.0,
                refine_min_cell_rows=2,
            ),
            heat=HeatMap(half_life_s=TICK_INTERVAL_S),
        )
        rng = np.random.default_rng(5)
        total = sum(f.num_rows for f in lake.snapshot().files)
        queries = [
            VectorQuery(
                rng.normal(size=16).astype(np.float32),
                nprobe=4,
                refine=total,
            )
            for _ in range(6)
        ]
        tracer = Tracer(clock=clock)
        with use_tracer(tracer):
            for q in queries:
                client.search("emb", q, k=5)
        controller.observe(tracer.pop_finished())
        report = controller.tick()
        assert report.refined, "hot probes should trigger a cell split"

        after = covering_records(client, "emb", "ivf_pq")
        assert len(after) == 1
        assert after[0].index_key != before.index_key
        # The refined file has strictly more, smaller inverted lists...
        from repro.core.index_file import IndexFileReader

        refined = IndexFileReader.open(store, after[0].index_key)
        assert refined.params["nlist"] > 4
        # ...and exhaustive probes through it still equal brute force.
        for q in queries:
            exact = VectorQuery(
                q.vector, nprobe=refined.params["nlist"], refine=total
            )
            indexed = client.search("emb", exact, k=5)
            oracle = client.search("emb", exact, k=5, use_indices=False)
            assert _rowset(indexed.matches) == _rowset(oracle.matches)

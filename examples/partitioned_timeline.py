"""Partitioned timeline: structured filters + a maintenance daemon.

The paper's normalized-query argument (§VI): when queries carry a
structured filter (here, a month), Rottnest indexes partitions
separately and a scoped search touches only the relevant slice — cost
scales with the fraction of data addressed, not the whole lake. The
script also runs the :class:`MaintenanceDaemon`, showing the zero-ops
deployment story: appends land, a cron-style tick keeps everything
indexed, compacted, and garbage-collected.

Run: ``python examples/partitioned_timeline.py``
"""

from repro import (
    ColumnType,
    Field,
    InMemoryObjectStore,
    LakeTable,
    RangeQuery,
    RottnestClient,
    Schema,
    TableConfig,
    UuidQuery,
)
from repro.core import MaintenanceDaemon, MaintenancePolicy
from repro.workloads.uuids import UuidWorkload


def main() -> None:
    store = InMemoryObjectStore()
    schema = Schema.of(
        Field("ts", ColumnType.INT64),
        Field("trace_id", ColumnType.BINARY),
        Field("span", ColumnType.STRING),
    )
    lake = LakeTable.create(
        store, "lake/traces", schema,
        TableConfig(row_group_rows=1000, page_target_bytes=8 * 1024),
    )
    client = RottnestClient(store, "indices/traces", lake)
    daemon = MaintenanceDaemon(
        client,
        [("trace_id", "uuid_trie"), ("ts", "minmax")],
        policy=MaintenancePolicy(compact_min_small_files=3,
                                 vacuum_interval_s=0.0),
    )
    ids = UuidWorkload(seed=0)

    # Six months of ingestion; the daemon ticks after each batch.
    months = [f"2026-{m:02d}" for m in range(1, 7)]
    ts = 0
    for month in months:
        batch_ids = ids.batch(2000)
        lake.append(
            {
                "ts": list(range(ts, ts + 2000)),
                "trace_id": batch_ids,
                "span": [f"{month} span {i}" for i in range(2000)],
            },
            partition=month,
        )
        ts += 2000
        store.clock.advance(30 * 24 * 3600)
        report = daemon.tick()
        print(
            f"{month}: indexed {len(report.indexed)}, "
            f"compacted {len(report.compacted)}, "
            f"vacuumed {len(report.vacuum.deleted_records) if report.vacuum else 0}"
        )

    # Structured filter: a trace lookup scoped to one month.
    target = ids.present_queries(1)[0]
    unscoped = client.search("trace_id", UuidQuery(target), k=5)
    month = LakeTable.partition_of(unscoped.matches[0].file)
    plan_all = client.explain("trace_id", UuidQuery(target))
    plan_one = client.explain(
        "trace_id", UuidQuery(target), partition=month
    )
    print()
    print("unscoped plan:")
    print(plan_all.describe())
    print(f"scoped to {month}:")
    print(plan_one.describe())

    # Range scan on the sorted timestamp column via zone maps.
    res = client.search("ts", RangeQuery(4100, 4120), k=100)
    print(
        f"\nrange ts in [4100, 4120]: {len(res.matches)} rows, "
        f"{res.stats.pages_probed} page(s) probed "
        f"out of a {lake.snapshot().num_rows}-row lake"
    )


if __name__ == "__main__":
    main()

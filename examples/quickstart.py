"""Quickstart: create a lake, index a column, search it.

Runs entirely in memory against the simulated object store::

    python examples/quickstart.py
"""

from repro import (
    ColumnType,
    Field,
    InMemoryObjectStore,
    LakeTable,
    RottnestClient,
    Schema,
    SubstringQuery,
    TableConfig,
)


def main() -> None:
    # 1. An S3-like object store and a Delta-like table on top of it.
    store = InMemoryObjectStore()
    schema = Schema.of(Field("body", ColumnType.STRING))
    lake = LakeTable.create(
        store,
        "lake/messages",
        schema,
        TableConfig(row_group_rows=1000, page_target_bytes=8 * 1024),
    )

    # 2. Ingest some data — ordinary lake appends, Rottnest not involved.
    lake.append(
        {
            "body": [
                f"message {i}: the quick brown fox jumps over lazy dog {i}"
                for i in range(2000)
            ]
        }
    )
    lake.append({"body": ["a needle in the haystack", "another message"]})

    # 3. Bolt on a Rottnest substring index (one call, any process).
    client = RottnestClient(store, "indices/messages", lake)
    record = client.index("body", "fm")
    print(f"indexed {record.num_rows} rows into {record.index_key}")
    print(f"index size: {record.size / 1024:.1f} KB")

    # 4. Search. Top-K, verified in situ against the Parquet pages.
    result = client.search("body", SubstringQuery("needle in the hay"), k=5)
    for match in result.matches:
        print(f"  hit: {match.file} row {match.row}: {match.value!r}")
    stats = result.stats
    print(
        f"stats: {stats.index_files_queried} index file(s), "
        f"{stats.pages_probed} page(s) probed, "
        f"{stats.files_brute_forced} file(s) brute-forced, "
        f"~{stats.estimated_latency() * 1000:.0f} ms modeled S3 latency"
    )

    # 5. New appends are searchable immediately (brute-force fill), and
    #    a later `index` call covers them.
    lake.append({"body": ["fresh needle, not yet indexed"]})
    result = client.search("body", SubstringQuery("fresh needle"), k=5)
    print(
        f"after append: {len(result.matches)} match(es), "
        f"{result.stats.files_brute_forced} file(s) scanned without index"
    )
    client.index("body", "fm")
    result = client.search("body", SubstringQuery("fresh needle"), k=5)
    print(
        f"after re-index: {len(result.matches)} match(es), "
        f"{result.stats.files_brute_forced} file(s) brute-forced"
    )


if __name__ == "__main__":
    main()

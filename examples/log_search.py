"""Observability scenario: high-cardinality identifier lookups.

Models the paper's motivating workload (§II-B): time-ordered event logs
tagged with request identifiers. Min-max chunk statistics are useless
for the identifier column (events arrive in time order, ids are random),
so without Rottnest every lookup is a full scan. The script shows:

* the min-max pruning failure directly,
* the trie index answering lookups with a few hundred KB of IO,
* deletion vectors (GDPR-style erasure) honoured by search,
* index maintenance (compact + vacuum) as the log grows.

Run: ``python examples/log_search.py``
"""

from repro import (
    ColumnType,
    Field,
    InMemoryObjectStore,
    LakeTable,
    RottnestClient,
    Schema,
    TableConfig,
    UuidQuery,
    compact_indices,
    vacuum_indices,
)
from repro.workloads.uuids import UuidWorkload


def main() -> None:
    store = InMemoryObjectStore()
    schema = Schema.of(
        Field("ts", ColumnType.INT64),
        Field("request_id", ColumnType.BINARY),
        Field("message", ColumnType.STRING),
    )
    lake = LakeTable.create(
        store, "lake/logs", schema,
        TableConfig(row_group_rows=2000, page_target_bytes=16 * 1024),
    )
    ids = UuidWorkload(seed=0)
    client = RottnestClient(store, "indices/logs", lake)

    # Hourly ingestion batches; index after each (e.g. a cron job).
    ts = 0
    for hour in range(6):
        batch_ids = ids.batch(3000)
        lake.append(
            {
                "ts": list(range(ts, ts + 3000)),
                "request_id": batch_ids,
                "message": [f"handled request in {50 + i % 200}ms"
                            for i in range(3000)],
            }
        )
        ts += 3000
        client.index("request_id", "uuid_trie")

    # Min-max stats prune nothing for the id column: every chunk's
    # [min, max] spans essentially the whole key space.
    from repro.formats.reader import ParquetFile

    snap = lake.snapshot()
    reader = ParquetFile(store, snap.file_paths[0])
    stats = reader.metadata.chunk_stats("request_id")
    target = ids.present_queries(1)[0]
    prunable = sum(1 for s in stats if s and not (s[0] <= target <= s[1]))
    print(
        f"min-max pruning on the id column: {prunable}/{len(stats)} chunks "
        f"prunable for a random lookup (useless, as §II-B predicts)"
    )

    # Indexed lookup: bytes touched vs a full scan.
    before = store.stats.snapshot()
    result = client.search("request_id", UuidQuery(target), k=10)
    delta = store.stats.delta(before)
    print(
        f"lookup found {len(result.matches)} event(s) reading "
        f"{delta.bytes_read / 1024:.0f} KB "
        f"(lake holds {snap.total_bytes / 1024:.0f} KB)"
    )

    # Right-to-erasure: delete every event of one request id.
    erased = ids.present_queries(1)[0]
    n = lake.delete_where("request_id", lambda v: bytes(v) == erased)
    check = client.search("request_id", UuidQuery(erased), k=10)
    print(f"erased {n} event(s); search now returns {len(check.matches)}")

    # Maintenance: merge the six per-hour index files, drop the rest.
    merged = compact_indices(client, "request_id", "uuid_trie")
    report = vacuum_indices(client, snapshot_id=lake.latest_version())
    store.clock.advance(2 * client.index_timeout_s)
    report = vacuum_indices(client, snapshot_id=lake.latest_version())
    print(
        f"compaction merged into {len(merged)} file(s); vacuum removed "
        f"{len(report.deleted_objects)} object(s)"
    )
    result = client.search("request_id", UuidQuery(target), k=10)
    print(
        f"post-maintenance lookup: {len(result.matches)} event(s), "
        f"{result.stats.index_files_queried} index file queried"
    )


if __name__ == "__main__":
    main()

"""LLM pretraining-data exploration: substring search over a corpus.

The paper's §II-B example: detect whether evaluation data leaked into a
pretraining corpus by substring-searching the training records. The
corpus lives as a STRING column in the lake; Rottnest's FM-index makes
each probe a handful of small reads instead of a full scan.

Run: ``python examples/llm_data_curation.py``
"""

from repro import (
    ColumnType,
    Field,
    InMemoryObjectStore,
    LakeTable,
    RottnestClient,
    Schema,
    SubstringQuery,
    TableConfig,
)
from repro.engines.bruteforce import BruteForceEngine
from repro.workloads.text import TextWorkload


def main() -> None:
    store = InMemoryObjectStore()
    schema = Schema.of(Field("document", ColumnType.STRING))
    lake = LakeTable.create(
        store, "lake/corpus", schema,
        TableConfig(row_group_rows=1000, page_target_bytes=32 * 1024),
    )
    gen = TextWorkload(seed=42, vocabulary_size=3000)

    # Crawl shards land as separate files (append-only corpus).
    shards = [gen.documents(400, avg_chars=500) for _ in range(3)]
    for shard in shards:
        lake.append({"document": shard})

    # Plant a "leaked" eval question inside one training document.
    eval_question = "what is the airspeed velocity of an unladen swallow"
    poisoned = shards[1][123] + " " + eval_question
    lake.append({"document": [poisoned]})

    client = RottnestClient(
        store, "indices/corpus", lake,
    )
    record = client.index(
        "document", "fm",
        params={"block_size": 32 * 1024, "sample_rate": 64,
                "store_pagemap": False},
    )
    snap = lake.snapshot()
    print(
        f"corpus: {snap.num_rows} documents, "
        f"{snap.total_bytes / 1024:.0f} KB compressed; "
        f"index: {record.size / 1024:.0f} KB "
        f"({record.size / snap.total_bytes:.2f}x the data)"
    )

    # Leak scan: eval snippets as probes.
    probes = [eval_question[:24], "nonexistent eval snippet xyz"]
    for probe in probes:
        result = client.search("document", SubstringQuery(probe), k=10)
        verdict = "LEAKED" if result.matches else "clean"
        print(
            f"probe {probe!r}: {verdict} "
            f"({len(result.matches)} hit(s), "
            f"{result.stats.pages_probed} page(s) probed, "
            f"~{result.stats.estimated_latency() * 1000:.0f} ms modeled)"
        )

    # Cross-check against a brute-force scan — same answers, far more IO.
    engine = BruteForceEngine(store, lake)
    before = store.stats.snapshot()
    brute, scanned = engine.search(
        "document", SubstringQuery(eval_question[:24]), k=10
    )
    brute_bytes = store.stats.delta(before).bytes_read
    before = store.stats.snapshot()
    client.search("document", SubstringQuery(eval_question[:24]), k=10)
    rott_bytes = store.stats.delta(before).bytes_read
    print(
        f"brute force read {brute_bytes / 1024:.0f} KB vs Rottnest "
        f"{rott_bytes / 1024:.0f} KB for the same verified answer "
        f"({brute_bytes / max(rott_bytes, 1):.0f}x more)"
    )

    # Frequency analytics straight off the index: exact occurrence
    # counts without touching the data at all.
    for term in [gen.vocabulary[0], gen.vocabulary[50], "zyzzyva"]:
        total = client.count("document", SubstringQuery(term))
        print(f"corpus frequency of {term!r}: {total}")


if __name__ == "__main__":
    main()

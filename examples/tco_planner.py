"""TCO planner: "which architecture should I run?" (§VI).

Give it your workload's shape — dataset size, expected queries per
month, planning horizon — and it prints the phase diagram plus a direct
recommendation, using the same cost model as the Figure 7/9 benchmarks.

Run::

    python examples/tco_planner.py [dataset_gb] [queries_per_month] [months] [sla_s]

The optional SLA reproduces Figure 2's other axis: approaches whose
minimum latency misses the SLA are infeasible no matter how cheap.
"""

import sys

from repro.engines.bruteforce import BruteForceModel
from repro.engines.dedicated import OPENSEARCH_MODEL
from repro.storage.costs import GB, CostModel
from repro.tco.model import ApproachCost
from repro.tco.phase import cheapest_feasible, compute_phase_diagram
from repro.tco.render import describe_boundaries, render


def plan(
    dataset_gb: float,
    queries_per_month: float,
    months: float,
    sla_s: float | None = None,
) -> None:
    costs = CostModel()
    paper_bytes = int(dataset_gb * GB)
    brute_model = BruteForceModel(scan_rate_bytes_per_s=0.5e9)

    copy = ApproachCost(
        name="copy-data",
        cost_per_month=OPENSEARCH_MODEL.monthly_cost(paper_bytes, costs),
        min_latency_s=0.03,
    )
    brute = ApproachCost(
        name="brute-force",
        cost_per_month=costs.storage_monthly(paper_bytes),
        cost_per_query=brute_model.cost_per_query(paper_bytes, 8, costs),
        min_latency_s=brute_model.latency(paper_bytes, 64),
    )
    rottnest = ApproachCost(
        name="rottnest",
        index_cost=paper_bytes / 8e6 * costs.instance_hourly("c6i.2xlarge") / 3600,
        cost_per_month=costs.storage_monthly(int(paper_bytes * 1.6)),
        cost_per_query=3.0 * costs.instance_hourly("c6i.2xlarge") / 3600,
        min_latency_s=3.0,
    )

    diagram = compute_phase_diagram([copy, brute, rottnest])
    print(render(diagram))
    print()
    print(describe_boundaries(diagram, [1.0, months]))
    print()

    total_queries = queries_per_month * months
    approaches = [copy, brute, rottnest]
    winner = cheapest_feasible(
        approaches, months=months, queries=total_queries, sla_s=sla_s
    )
    if winner is None:
        print(f"no approach meets a {sla_s}s latency SLA")
        return
    print(
        f"your workload: {dataset_gb:g} GB, {queries_per_month:g} "
        f"queries/month for {months:g} months "
        f"({total_queries:g} total queries)"
    )
    for approach in diagram.approaches:
        marker = ""
        if approach.name == winner.name:
            marker = " <== cheapest" + ("" if sla_s is None else " feasible")
        elif sla_s is not None and approach.min_latency_s > sla_s:
            marker = f"  (misses {sla_s}s SLA)"
        print(
            f"  {approach.name:>12}: ${approach.tco(months, total_queries):12,.0f}"
            f"  (min latency ~{approach.min_latency_s:.2f}s){marker}"
        )


def main() -> None:
    args = [float(a) for a in sys.argv[1:5]]
    dataset_gb = args[0] if len(args) > 0 else 300.0
    queries_per_month = args[1] if len(args) > 1 else 2000.0
    months = args[2] if len(args) > 2 else 12.0
    sla_s = args[3] if len(args) > 3 else None
    plan(dataset_gb, queries_per_month, months, sla_s)


if __name__ == "__main__":
    main()

"""RAG-style retrieval: approximate nearest-neighbour search over
embeddings stored in the lake.

Shows the IVF-PQ index's recall/cost dial (``nprobe``/``refine``,
§V-C3): the same index serves low-latency approximate retrieval and
high-recall retrieval just by changing query parameters — which is why
the paper concludes building the index is robust to changing recall
requirements (Fig. 9).

Run: ``python examples/rag_vector_search.py``
"""

import numpy as np

from repro import (
    ColumnType,
    Field,
    InMemoryObjectStore,
    LakeTable,
    RottnestClient,
    Schema,
    TableConfig,
    VectorQuery,
)
from repro.workloads.vectors import VectorWorkload, exact_knn, recall_at_k


def main() -> None:
    dim = 64
    store = InMemoryObjectStore()
    schema = Schema.of(
        Field("chunk", ColumnType.STRING),
        Field("embedding", ColumnType.VECTOR, vector_dim=dim),
    )
    lake = LakeTable.create(
        store, "lake/kb", schema,
        TableConfig(row_group_rows=4000, page_target_bytes=64 * 1024),
    )
    gen = VectorWorkload(dim=dim, n_clusters=64, noise_scale=6.0, seed=1)

    # Two ingestion batches of "document chunk" embeddings.
    corpus_parts = []
    for batch_no in range(2):
        embeddings = gen.batch(4000)
        corpus_parts.append(embeddings)
        lake.append(
            {
                "chunk": [
                    f"batch{batch_no} chunk {i}: ..." for i in range(4000)
                ],
                "embedding": embeddings,
            }
        )
    corpus = np.vstack(corpus_parts)

    client = RottnestClient(store, "indices/kb", lake)
    record = client.index("embedding", "ivf_pq", params={"nlist": 64, "m": 16})
    print(
        f"indexed {record.num_rows} embeddings; index "
        f"{record.size / 1024:.0f} KB "
        f"({record.size / lake.snapshot().total_bytes:.2f}x the data)"
    )

    # Row-order offsets to compute recall against exact ground truth.
    snap = lake.snapshot()
    offsets, base = {}, 0
    for entry in snap.files:
        offsets[entry.path] = base
        base += entry.num_rows

    queries = gen.queries(10)
    print(f"{'setting':>22} | {'recall@10':>9} | {'modeled latency':>15}")
    for nprobe, refine in [(2, 20), (8, 64), (24, 200)]:
        recalls, latencies = [], []
        for q in queries:
            res = client.search(
                "embedding", VectorQuery(q, nprobe=nprobe, refine=refine), k=10
            )
            found = [offsets[m.file] + m.row for m in res.matches]
            true = exact_knn(corpus, q, 10)
            recalls.append(recall_at_k(found, true.tolist()))
            latencies.append(res.stats.estimated_latency())
        print(
            f"nprobe={nprobe:>3} refine={refine:>4} | "
            f"{np.mean(recalls):9.3f} | "
            f"{np.mean(latencies) * 1000:12.0f} ms"
        )

    # Retrieval for one query: the top chunk is the true nearest.
    q = corpus[1234]
    res = client.search(
        "embedding", VectorQuery(q, nprobe=16, refine=100), k=3
    )
    top = res.matches[0]
    print(
        f"self-query retrieval: top match row {offsets[top.file] + top.row} "
        f"(expected 1234) at distance {top.score:.2e}"
    )


if __name__ == "__main__":
    main()

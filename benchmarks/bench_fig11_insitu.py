"""Figure 11 + §VII-C: the in-situ querying design decision.

Three variants of the UUID phase diagram:

* **rottnest** — the real system: in-situ page reads via the custom
  page-granular reader;
* **+data copy** — what happens if Rottnest stored a copy of the raw
  data in a custom format: ``cpm_r`` roughly doubles, shrinking the win
  region against brute force on long horizons;
* **no custom reader** — in-situ probing through a *traditional*
  chunk-granular Parquet reader: ``cpq_r`` explodes (measured from the
  actual chunk-read bytes/latency), pushing Rottnest below the copy-data
  approach over several orders of magnitude.

Plus the §VII-C table: Rottnest vs LanceDB cold-cache latency at the
three recall targets (paper: 2.09 vs 1.90, 2.30 vs 1.94, 2.81 vs 2.72 s)
— custom-format byte-exact reads barely beat 300 KB page reads because
both sit in the flat region of Fig. 10a.
"""

import pytest

from repro.core.queries import UuidQuery
from repro.engines.dedicated import lance_cold_latency
from repro.storage.latency import LatencyModel
from repro.tco.phase import compute_phase_diagram
from repro.tco.render import render

from benchmarks.common import (
    PAPER_LATENCY,
    PAPER_UUID_BYTES,
    approaches_for,
    build_uuid_scenario,
    write_result,
)

LAT = LatencyModel()


@pytest.fixture(scope="module")
def scenario():
    return build_uuid_scenario(keys_per_file=20_000, files=3)


#: Typical sizes at paper scale (§V-A): a text/binary column chunk of a
#: 128 MB row group is ~100 MB; a data page is ~300 KB compressed.
PAPER_CHUNK_BYTES = 100 << 20
PAPER_PAGE_BYTES = 300_000


def chunk_granular_latency(scenario, keys) -> tuple[float, float]:
    """(page_probe_s, chunk_probe_s) per query at paper-scale sizes.

    Replays each query's probe phase twice: once with page-sized reads,
    once with footer + full-column-chunk reads — the traditional-reader
    behaviour. Read sizes use paper-scale chunks, where Fig. 10a's
    linear region makes chunk fetches ~40x slower than page fetches.
    """
    page_total = chunk_total = 0.0
    probe_page = probe_chunk = 0.0
    for key in keys:
        res = scenario.client.search("uuid", UuidQuery(key), k=10)
        probes = max(res.stats.pages_probed, 1)
        index_rounds = res.stats.estimated_latency(LAT) - LAT.round_latency(
            [PAPER_PAGE_BYTES] * probes
        )
        index_rounds = max(index_rounds, 0.0)
        page_probe = LAT.round_latency([PAPER_PAGE_BYTES] * probes)
        # Traditional reader: footer round, then chunk round.
        chunk_probe = LAT.round_latency([64 * 1024] * probes) + LAT.round_latency(
            [PAPER_CHUNK_BYTES] * probes
        )
        probe_page += page_probe
        probe_chunk += chunk_probe
        page_total += index_rounds + page_probe
        chunk_total += index_rounds + chunk_probe
    n = len(keys)
    return page_total / n, chunk_total / n, probe_page / n, probe_chunk / n


def test_fig11_phase_variants(scenario, benchmark):
    keys = scenario.uuid_gen.present_queries(6)
    benchmark(lambda: scenario.client.search("uuid", UuidQuery(keys[0]), k=10))

    base_latency, chunk_latency, probe_page, probe_chunk = (
        chunk_granular_latency(scenario, keys)
    )
    # Scale the latency blow-up onto the paper-calibrated base.
    slowdown = chunk_latency / base_latency
    probe_slowdown = probe_chunk / probe_page
    calibrated = PAPER_LATENCY["uuid_trie"]

    copy, brute, rott = approaches_for(
        name_suffix="base",
        paper_bytes=PAPER_UUID_BYTES,
        expansion=scenario.expansion,
        rottnest_latency_s=calibrated,
        index_type="uuid_trie",
    )
    # Variant: store a full copy of the data in a custom format.
    _, _, rott_copy = approaches_for(
        name_suffix="copy",
        paper_bytes=PAPER_UUID_BYTES,
        expansion=scenario.expansion,
        rottnest_latency_s=calibrated,
        index_type="uuid_trie",
        extra_monthly_storage_bytes=PAPER_UUID_BYTES,  # the data copy
    )
    # Variant: no custom reader (chunk-granular probing).
    _, _, rott_chunk = approaches_for(
        name_suffix="chunk",
        paper_bytes=PAPER_UUID_BYTES,
        expansion=scenario.expansion,
        rottnest_latency_s=calibrated * slowdown,
        index_type="uuid_trie",
    )

    d_base = compute_phase_diagram([copy, brute, rott])
    d_copy = compute_phase_diagram([copy, brute, rott_copy])
    d_chunk = compute_phase_diagram([copy, brute, rott_chunk])

    lines = [
        "=== Figure 11: in-situ querying ablation (UUID search) ===",
        f"page-read query: {base_latency*1000:.0f} ms end-to-end "
        f"(probe phase {probe_page*1000:.0f} ms)",
        f"chunk-read query: {chunk_latency*1000:.0f} ms end-to-end "
        f"({slowdown:.1f}x; probe phase {probe_chunk*1000:.0f} ms, "
        f"{probe_slowdown:.1f}x)",
        "",
        "--- base (page reads, no data copy) ---",
        render(d_base, width=48, height=14),
        f"win band @10mo: {d_base.win_band('rottnest', 10.0)}",
        "",
        "--- with data copy (cpm_r includes a full copy) ---",
        render(d_copy, width=48, height=14),
        f"win band @10mo: {d_copy.win_band('rottnest', 10.0)}",
        "",
        "--- without custom reader (chunk-granular cpq_r) ---",
        render(d_chunk, width=48, height=14),
        f"win band @10mo: {d_chunk.win_band('rottnest', 10.0)}",
    ]
    text = "\n".join(lines)
    print(text)
    write_result("fig11_insitu.txt", text)

    # Paper claims: the data copy shrinks the win band against brute
    # force on long horizons...
    base_band = d_base.win_band("rottnest", 10.0)
    copy_band = d_copy.win_band("rottnest", 10.0)
    assert copy_band[0] > base_band[0] * 2
    # ...and the chunk reader shrinks Rottnest's win band against
    # copy-data severalfold. (The per-query latency includes the plan
    # phase, which both variants pay, so the end-to-end slowdown is
    # smaller than the raw probe-phase blow-up.)
    chunk_band = d_chunk.win_band("rottnest", 10.0)
    assert chunk_band is None or (
        chunk_band[1] < base_band[1] / 2.5
    )
    assert slowdown > 2
    # The probe phase itself — the part the custom reader changes — is
    # an order of magnitude slower at paper-scale chunk sizes.
    assert probe_slowdown > 10


def test_vii_c_lance_cold_comparison(scenario, benchmark):
    """§VII-C: Rottnest page reads vs custom-format exact reads."""
    benchmark(lambda: LAT.round_latency([300_000] * 50))
    paper = {0.87: (2.09, 1.90), 0.92: (2.30, 1.94), 0.97: (2.81, 2.72)}
    settings = {0.87: (8, 50), 0.92: (12, 100), 0.97: (24, 100)}
    lines = [
        "=== §VII-C: Rottnest vs LanceDB cold-cache (modeled rounds) ===",
        f"{'recall':>7} | {'rottnest':>10} | {'lance':>10} | {'ratio':>6} | paper",
    ]
    page_decode_s = 0.006  # measured in Figure 10b
    for target, (nprobe, refine) in settings.items():
        # Rottnest: centroids -> lists -> 300 KB page reads (+decode).
        rott = (
            LAT.round_latency([64 * 1024])
            + LAT.round_latency([200_000] * nprobe)
            + LAT.round_latency([300_000] * refine)
            + page_decode_s
        )
        lance = lance_cold_latency(
            nprobe=nprobe, refine=refine, list_bytes=200_000
        )
        ratio = rott / lance
        p_rott, p_lance = paper[target]
        lines.append(
            f"{target:>7} | {rott*1000:7.0f} ms | {lance*1000:7.0f} ms | "
            f"{ratio:5.2f}x | {p_rott:.2f} vs {p_lance:.2f} s "
            f"({p_rott/p_lance:.2f}x)"
        )
        # Both designs are within ~50% of each other, as in the paper
        # (1.10x, 1.19x, 1.03x).
        assert ratio < 1.5
    text = "\n".join(lines)
    print(text)
    write_result("viic_lance_cold.txt", text)

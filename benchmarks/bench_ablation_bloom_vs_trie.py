"""Ablation: binary trie vs per-page Bloom filters for identifier search.

Both serve :class:`UuidQuery`. The trade-off measured here:

* the Bloom index is several times smaller (a few bits/key vs the
  trie's LCP+8-bit prefixes + posting lists), lowering ``cpm_r``;
* the Bloom index probes false-positive pages at a tunable rate and
  must fetch *every* filter component per lookup, raising ``cpq_r``
  (more requests per query → also a lower QPS ceiling, §VII-D3).

This is exactly the ``cpm_r``-vs-``cpq_r`` dial of Figure 12: which
index wins depends on the workload's position in the phase diagram.
"""

import pytest

from repro.core.client import RottnestClient
from repro.core.queries import UuidQuery
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.uuids import UuidWorkload

from benchmarks.common import write_result


@pytest.fixture(scope="module")
def deployments():
    out = {}
    for index_type in ("uuid_trie", "bloom"):
        store = InMemoryObjectStore(clock=SimClock())
        schema = Schema.of(Field("uuid", ColumnType.BINARY))
        lake = LakeTable.create(
            store, "lake/u", schema,
            TableConfig(row_group_rows=4000, page_target_bytes=32 * 1024),
        )
        gen = UuidWorkload(seed=0, nbytes=128)
        for _ in range(3):
            lake.append({"uuid": gen.batch(8000)})
        client = RottnestClient(store, "idx/u", lake)
        record = client.index("uuid", index_type)
        out[index_type] = (store, lake, client, gen, record)
    return out


def measure(store, client, gen, queries):
    hits = 0
    requests = 0
    fp_pages = 0
    for key in queries:
        before = store.stats.snapshot()
        res = client.search("uuid", UuidQuery(key), k=10)
        delta = store.stats.delta(before)
        requests += delta.gets + delta.heads + delta.lists
        hits += len(res.matches)
        fp_pages += res.stats.false_positives
    return hits, requests / len(queries), fp_pages


def test_ablation_bloom_vs_trie(deployments, benchmark):
    trie_store, _, trie_client, gen, trie_record = deployments["uuid_trie"]
    bloom_store, _, bloom_client, gen_b, bloom_record = deployments["bloom"]
    benchmark(
        lambda: trie_client.search(
            "uuid", UuidQuery(gen.present_queries(1)[0]), k=10
        )
    )

    present = gen.present_queries(12)
    absent = gen.absent_queries(12)

    trie_hits, trie_reqs, trie_fp = measure(
        trie_store, trie_client, gen, present + absent
    )
    bloom_hits, bloom_reqs, bloom_fp = measure(
        bloom_store, bloom_client, gen_b, present + absent
    )

    lines = [
        "=== Ablation: bloom vs trie (24k x 128-byte keys) ===",
        f"{'':>12} | {'index bytes':>11} | {'reqs/query':>10} | "
        f"{'fp pages':>8} | hits",
        f"{'trie':>12} | {trie_record.size:>11} | {trie_reqs:>10.1f} | "
        f"{trie_fp:>8} | {trie_hits}",
        f"{'bloom':>12} | {bloom_record.size:>11} | {bloom_reqs:>10.1f} | "
        f"{bloom_fp:>8} | {bloom_hits}",
        f"size ratio: bloom is {trie_record.size / bloom_record.size:.1f}x "
        f"smaller",
    ]
    text = "\n".join(lines)
    print(text)
    write_result("ablation_bloom_vs_trie.txt", text)

    # Both find exactly the present keys and nothing else.
    assert trie_hits == bloom_hits == len(present)
    # Bloom is markedly smaller...
    assert bloom_record.size < trie_record.size / 2
    # ...but pays with more or equal probing work.
    assert bloom_fp >= trie_fp

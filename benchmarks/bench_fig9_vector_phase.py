"""Figure 9: vector-search phase diagrams at recall targets 0.87 / 0.92
/ 0.97.

``nprobe`` and ``refine`` are grid-tuned against exact ground truth to
hit each recall@10 target, exactly as the paper tunes its IVF-PQ. The
paper's finding to reproduce: the higher recall target costs ~35 % more
per query, but on log-log axes this barely moves the phase boundaries —
Rottnest still wins ~4 orders of magnitude of query volume at 10
months, so picking an index remains a good decision even if recall
requirements change later.
"""

import numpy as np
import pytest

from repro.core.queries import VectorQuery
from repro.tco.phase import compute_phase_diagram
from repro.tco.render import describe_boundaries, render
from repro.workloads.vectors import exact_knn, recall_at_k

from benchmarks.common import (
    PAPER_VECTOR_BYTES,
    approaches_for,
    build_vector_scenario,
    mean_search_latency,
    write_result,
)
from repro.engines.dedicated import LANCEDB_MODEL

RECALL_TARGETS = [0.87, 0.92, 0.97]
#: §VII-C: measured Rottnest latencies at each recall target.
PAPER_LATENCIES = {0.87: 2.09, 0.92: 2.30, 0.97: 2.81}


@pytest.fixture(scope="module")
def scenario():
    # Noisy, many-cluster distribution so the recall targets genuinely
    # separate nprobe/refine settings (SIFT-like difficulty).
    return build_vector_scenario(
        vectors_per_file=4000, files=2, dim=64, nlist=64, m=16,
        n_clusters=64, noise_scale=8.0,
    )


def measure_recall(scenario, nprobe, refine, queries):
    recalls = []
    for query in queries:
        res = scenario.client.search(
            "emb", VectorQuery(query, nprobe=nprobe, refine=refine), k=10
        )
        found = []
        snap = scenario.lake.snapshot()
        base = 0
        offsets = {}
        for entry in snap.files:
            offsets[entry.path] = base
            base += entry.num_rows
        for m in res.matches:
            found.append(offsets[m.file] + m.row)
        true = exact_knn(scenario.corpus, query, 10)
        recalls.append(recall_at_k(found, true.tolist()))
    return float(np.mean(recalls))


def tune_for_recall(scenario, target, queries):
    """Smallest (nprobe, refine) hitting the recall target."""
    for nprobe in (1, 2, 4, 6, 8, 12, 16, 24, 32, 48):
        for refine in (20, 50, 100, 200, 400):
            recall = measure_recall(scenario, nprobe, refine, queries)
            if recall >= target:
                return nprobe, refine, recall
    raise AssertionError(f"could not reach recall {target}")


@pytest.fixture(scope="module")
def tuned(scenario):
    rng = np.random.default_rng(7)
    queries = scenario.vector_gen.queries(20)
    return {
        target: tune_for_recall(scenario, target, queries)
        for target in RECALL_TARGETS
    }


def test_fig9_phase_diagrams(scenario, tuned, benchmark):
    rng = np.random.default_rng(0)
    q = scenario.corpus[3]
    benchmark(
        lambda: scenario.client.search(
            "emb", VectorQuery(q, nprobe=8, refine=64), k=10
        )
    )
    lines = ["=== Figure 9: vector phase diagrams at recall targets ==="]
    bands = {}
    for target in RECALL_TARGETS:
        nprobe, refine, achieved = tuned[target]
        queries = scenario.vector_gen.queries(6)
        results = [
            scenario.client.search(
                "emb", VectorQuery(qv, nprobe=nprobe, refine=refine), k=10
            )
            for qv in queries
        ]
        measured = mean_search_latency(results)
        calibrated = PAPER_LATENCIES[target]
        copy, brute, rott = approaches_for(
            name_suffix=f"recall{target}",
            paper_bytes=PAPER_VECTOR_BYTES,
            expansion=scenario.expansion,
            rottnest_latency_s=calibrated,
            index_type="ivf_pq",
            dedicated_model=LANCEDB_MODEL,
        )
        diagram = compute_phase_diagram([copy, brute, rott])
        band = diagram.win_band("rottnest", 10.0)
        bands[target] = band
        lines += [
            f"--- recall target {target} ---",
            f"tuned nprobe={nprobe} refine={refine} "
            f"achieved recall@10={achieved:.3f}",
            f"measured latency {measured*1000:.1f} ms (micro); "
            f"paper-calibrated {calibrated:.2f} s",
            render(diagram, width=48, height=14),
            describe_boundaries(diagram, [1.0, 10.0]),
            f"win band at 10 months: {band}  "
            f"({diagram.orders_of_magnitude_won('rottnest', 10.0):.2f} OoM)",
            "",
        ]
        assert achieved >= target
        assert diagram.orders_of_magnitude_won("rottnest", 10.0) >= 3.5
    text = "\n".join(lines)
    print(text)
    write_result("fig9_vector_phase.txt", text)

    # The paper's conclusion: the 0.97-vs-0.87 boundary shift is small
    # on log-log axes (same order of magnitude at both band edges).
    lo_ratio = bands[0.97][0] / bands[0.87][0]
    hi_ratio = bands[0.87][1] / bands[0.97][1]
    assert lo_ratio < 3
    assert hi_ratio < 3


def test_fig9_recall_cost_monotonicity(scenario, tuned, benchmark):
    """Higher recall targets require at least as much work."""
    benchmark(lambda: tuned)
    probes = [tuned[t][0] * tuned[t][1] for t in RECALL_TARGETS]
    assert probes == sorted(probes)

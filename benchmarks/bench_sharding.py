"""Sharded-routing benchmark: the `repro.shard` subsystem end to end.

Three measurements over the modeled scenario in
:mod:`repro.shard.bench` (one uuid lake, materialized at 1/2/4/8
shards, the same query stream routed through each deployment):

* **scatter** — prune off, every shard queried every time: p50 stays
  ~flat with shard count (one parallel wave, Fig. 8c shape) while
  request cost grows ~linearly — the scatter-gather scaling trade.
* **routed** — hash pruning on: exact-key queries collapse back to one
  shard's cost while latency stays flat.
* **hedging** — two replicas with one injected 8x-slow node: with the
  hedge policy off the slow node owns p99; with it on, p99 drops
  measurably and the hedge/win counters are nonzero.

Everything is modeled from request traces, so the persisted
``BENCH_sharding.json`` numbers are deterministic and the regression
gate (``tests/test_bench_regression.py``) pins them.
"""

from __future__ import annotations

from repro.shard.bench import run_shard_bench

from benchmarks.common import write_bench, write_result

SHARD_COUNTS = (1, 2, 4, 8)


def test_sharding_scaling_and_hedging(benchmark):
    result = benchmark(lambda: run_shard_bench(shard_counts=SHARD_COUNTS))

    lines = ["=== sharding: scatter-gather scaling + hedging (modeled) ==="]
    lines.append(result.describe())
    text = "\n".join(lines)
    print(text)
    write_result("sharding_scaling.txt", text)

    write_bench(
        "sharding",
        "scatter",
        params={
            "files": result.files,
            "rows": result.rows,
            "shard_counts": list(SHARD_COUNTS),
        },
        metrics={
            **{
                f"p50_modeled_ms_{n}_shards": result.scatter_p50_ms[n]
                for n in SHARD_COUNTS
            },
            **{
                f"p99_modeled_ms_{n}_shards": result.scatter_p99_ms[n]
                for n in SHARD_COUNTS
            },
            **{
                f"cost_usd_per_query_{n}_shards": result.scatter_cost_usd[n]
                for n in SHARD_COUNTS
            },
            **{
                f"requests_per_query_{n}_shards": result.scatter_requests[n]
                for n in SHARD_COUNTS
            },
            "p50_ratio_4_shards": result.p50_ratio(4),
            "cost_ratio_4_shards": result.cost_ratio(4),
        },
    )
    write_bench(
        "sharding",
        "routed",
        params={"shard_counts": list(SHARD_COUNTS)},
        metrics={
            **{
                f"p50_modeled_ms_{n}_shards": result.routed_p50_ms[n]
                for n in SHARD_COUNTS
            },
            **{
                f"cost_usd_per_query_{n}_shards": result.routed_cost_usd[n]
                for n in SHARD_COUNTS
            },
            **{
                f"shards_pruned_{n}_shards": result.routed_pruned[n]
                for n in SHARD_COUNTS
            },
        },
    )
    write_bench(
        "sharding",
        "hedging",
        params={
            "shards": result.hedge_shards,
            "replicas": result.replicas,
            "slow_factor": result.slow_factor,
        },
        metrics={
            "p99_off_modeled_ms": result.hedge_off_p99_ms,
            "p99_on_modeled_ms": result.hedge_on_p99_ms,
            "hedge_p99_speedup": result.hedge_p99_speedup,
            "hedges": result.hedges,
            "hedge_wins": result.hedge_wins,
        },
    )

    # Acceptance (ISSUE 6): scatter p50 at 4 shards within 15% of the
    # 1-shard p50, cost ~linear in shard count, and hedging measurably
    # cuts the injected-slow-node p99.
    assert result.p50_ratio(4) <= 1.15
    assert result.cost_ratio(4) >= 2.0
    assert result.cost_ratio(8) > result.cost_ratio(4)
    # Pruned routing stays ~one shard's cost as the fleet grows.
    assert result.routed_cost_usd[8] <= result.scatter_cost_usd[8] / 2
    assert result.routed_pruned[8] == 7.0
    # Hedging: fires, wins, and moves the tail.
    assert result.hedges > 0
    assert result.hedge_wins > 0
    assert result.hedge_p99_speedup > 1.0
    # The per-shard SLO over the healthy routed run holds.
    assert result.slo_ok
    assert result.ok

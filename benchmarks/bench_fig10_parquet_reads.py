"""Figure 10: Parquet reading micro-benchmarks.

* 10a — byte-range request latency vs read granularity at 1..512
  concurrent reads: flat until ~1 MB (time-to-first-byte bound), then
  linear in size. Parquet *pages* (~300 KB) sit in the flat region;
  *row groups* (~128 MB) sit deep in the linear region — the core
  argument for page-granular in-situ reads (§V-A, §VII-C).
* 10b — reading 300 KB raw byte ranges vs reading and decoding real
  Parquet pages: decompression adds little, measured as actual
  wall-clock decode time via pytest-benchmark.
"""

import pytest

from repro.formats.page_reader import build_page_table, read_page
from repro.formats.parquet import write_parquet
from repro.formats.schema import ColumnType, Field, Schema
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore
from repro.workloads.text import TextWorkload

from benchmarks.common import write_result

SIZES = [1 << k for k in range(12, 28)]  # 4 KB .. 128 MB
CONCURRENCY = [1, 8, 64, 512]
MODEL = LatencyModel()


def test_fig10a_latency_vs_granularity(benchmark):
    benchmark(lambda: MODEL.round_latency([300_000] * 64))
    lines = [
        "=== Figure 10a: S3 read latency vs granularity ===",
        f"{'size':>10} | " + " | ".join(f"c={c:>4}" for c in CONCURRENCY),
    ]
    table = {}
    for size in SIZES:
        cells = []
        for c in CONCURRENCY:
            # Per-request latency of one wave of c concurrent requests.
            latency = MODEL.round_latency([size] * c)
            table[(size, c)] = latency
            cells.append(f"{latency*1000:7.1f}ms")
        label = (
            f"{size//1024}KB" if size < (1 << 20) else f"{size >> 20}MB"
        )
        lines.append(f"{label:>10} | " + " | ".join(cells))
    text = "\n".join(lines)
    print(text)
    write_result("fig10a_granularity.txt", text)

    for c in CONCURRENCY:
        # Flat below 1 MB.
        assert table[(4096, c)] == pytest.approx(table[(1 << 20, c)])
        # Linear above: 128 MB costs ~2x of 64 MB.
        ratio = table[(1 << 27, c)] / table[(1 << 26, c)]
        assert 1.7 < ratio < 2.2
    # Pages (300 KB) are latency-bound; row groups (128 MB) are not.
    page = MODEL.request_latency(300_000)
    row_group = MODEL.request_latency(128 << 20)
    assert page == MODEL.first_byte_s
    assert row_group > 30 * page


@pytest.fixture(scope="module")
def page_corpus():
    """A file with ~300 KB compressed pages of realistic text."""
    gen = TextWorkload(seed=0, vocabulary_size=3000)
    docs = gen.documents(1500, avg_chars=900)
    schema = Schema.of(Field("text", ColumnType.STRING))
    result = write_parquet(
        schema,
        {"text": docs},
        row_group_rows=100_000,
        page_target_bytes=1 << 20,  # ~1 MB raw -> a few hundred KB packed
    )
    store = InMemoryObjectStore()
    store.put("c.parquet", result.data)
    table = build_page_table(result.metadata, "c.parquet", "text")
    return store, schema, table


def test_fig10b_page_decode_vs_raw_range(page_corpus, benchmark):
    """Wall-clock cost of page decode vs just fetching the bytes."""
    store, schema, table = page_corpus
    field = schema.field("text")
    entry = table.entry(0)

    decode_time = benchmark(
        lambda: read_page(store, field, entry)
    )
    # Compare modeled request latency with and without decode cost.
    import time

    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        store.get("c.parquet", (entry.offset, entry.compressed_size))
    raw_s = (time.perf_counter() - t0) / reps
    t0 = time.perf_counter()
    for _ in range(reps):
        read_page(store, field, entry)
    decoded_s = (time.perf_counter() - t0) / reps

    request_s = MODEL.request_latency(entry.compressed_size)
    overhead = decoded_s - raw_s
    lines = [
        "=== Figure 10b: 300KB raw range vs real page read+decode ===",
        f"page compressed size: {entry.compressed_size/1024:.0f} KB "
        f"({entry.num_values} rows)",
        f"S3 request latency (model): {request_s*1000:.1f} ms",
        f"raw range fetch (wall): {raw_s*1000:.2f} ms",
        f"fetch+decompress+decode (wall): {decoded_s*1000:.2f} ms",
        f"decode overhead: {overhead*1000:.2f} ms "
        f"({overhead/request_s*100:.0f}% of request latency)",
    ]
    text = "\n".join(lines)
    print(text)
    write_result("fig10b_decode.txt", text)
    # The paper's point: decompression overhead is not a concern — it is
    # small relative to the object-store request latency.
    assert overhead < request_s

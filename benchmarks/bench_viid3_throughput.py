"""§VII-D3: throughput limitations do not change the conclusions.

Measures each workload's requests-per-query from real search traces,
derives Rottnest's QPS ceiling from S3's 5500 GET/s per-prefix limit,
and verifies that sustaining that ceiling for 10 months lands *beyond*
the query count where the copy-data approach already wins on cost —
i.e., Rottnest never operates in a regime where its throughput cap is
the binding constraint (paper: "10 QPS = 2.52x10^7 total queries at 10
months", past the boundary).
"""


from repro.core.queries import SubstringQuery, UuidQuery, VectorQuery
from repro.engines.dedicated import LANCEDB_MODEL, OPENSEARCH_MODEL
from repro.tco.phase import compute_phase_diagram
from repro.tco.throughput import ThroughputModel, throughput_analysis
from repro.workloads.text import TextWorkload

from benchmarks.common import (
    PAPER_LATENCY,
    PAPER_TEXT_BYTES,
    PAPER_UUID_BYTES,
    PAPER_VECTOR_BYTES,
    approaches_for,
    build_text_scenario,
    build_uuid_scenario,
    build_vector_scenario,
    write_result,
)

#: Extra requests a paper-scale query makes beyond the micro trace
#: (deeper structures, more index files); conservative multiplier.
SCALE_REQUEST_FACTOR = 4.0


def test_viid3_throughput_limits(benchmark):
    text = build_text_scenario(docs_per_file=200, files=2)
    uuid = build_uuid_scenario(keys_per_file=10_000, files=2)
    vector = build_vector_scenario(vectors_per_file=3000, files=2)
    gen = TextWorkload(seed=5, vocabulary_size=2000)
    docs = text.lake.to_pylist("text")
    setups = [
        ("substring", text, PAPER_TEXT_BYTES, OPENSEARCH_MODEL,
         SubstringQuery(gen.present_queries(docs, 1, length=12)[0])),
        ("uuid", uuid, PAPER_UUID_BYTES, OPENSEARCH_MODEL,
         UuidQuery(uuid.uuid_gen.present_queries(1)[0])),
        ("vector", vector, PAPER_VECTOR_BYTES, LANCEDB_MODEL,
         VectorQuery(vector.corpus[5], nprobe=8, refine=64)),
    ]
    benchmark(
        lambda: uuid.client.search("uuid", setups[1][4], k=5)
    )
    lines = [
        "=== §VII-D3: throughput limitations ===",
        f"{'workload':>10} | {'req/query':>9} | {'max QPS':>8} | "
        f"{'queries@cap,10mo':>17} | {'copy-data boundary':>18} | binding?",
    ]
    for name, scenario, paper_bytes, dedicated, query in setups:
        result = scenario.client.search(scenario.column, query, k=10)
        requests = max(
            result.stats.trace.total_requests * SCALE_REQUEST_FACTOR, 10
        )
        copy, brute, rott = approaches_for(
            name_suffix=name,
            paper_bytes=paper_bytes,
            expansion=scenario.expansion,
            rottnest_latency_s=PAPER_LATENCY[scenario.index_type],
            index_type=scenario.index_type,
            dedicated_model=dedicated,
        )
        diagram = compute_phase_diagram([copy, brute, rott])
        analysis = throughput_analysis(
            diagram,
            months=10.0,
            model=ThroughputModel(rottnest_requests_per_query=requests),
        )
        lines.append(
            f"{name:>10} | {requests:9.0f} | {analysis.rottnest_max_qps:8.1f} | "
            f"{analysis.queries_at_cap:17.2e} | "
            f"{analysis.copy_data_boundary:18.2e} | "
            f"{'YES' if analysis.cap_binds_before_boundary else 'no'}"
        )
        # The paper's conclusion: by the time the cap binds, copy-data
        # already won on cost.
        assert analysis.conclusion_unchanged
        assert 10 <= analysis.rottnest_max_qps <= 1000
    text_out = "\n".join(lines)
    print(text_out)
    write_result("viid3_throughput.txt", text_out)

"""Ablation: componentization vs the two naive layouts (§V-B, Fig. 6).

For the trie and FM indices, compares three ways of putting the same
data structure on object storage:

* **monolithic** — serialize + compress the whole structure; every query
  downloads everything (one big sequential read);
* **componentized** — Rottnest's layout; a query reads the components it
  needs, a few hundred KB in 1-2 dependent rounds;
* **"mmap"** — every node access is its own dependent request: minimal
  bytes but a long chain (and no compression).

Also ablates the trie's 8-level lookup table: without it, the first 8
trie levels are walked as dependent binary-node accesses.

Run at paper-scale structure sizes through the latency model, with the
micro-scale measured traces shown for reference.
"""


from repro.core.queries import SubstringQuery, UuidQuery
from repro.storage.latency import LatencyModel
from repro.workloads.text import TextWorkload

from benchmarks.common import (
    build_text_scenario,
    build_uuid_scenario,
    write_result,
)

LAT = LatencyModel()

#: Paper-scale structure sizes (per compacted index file).
TRIE_INDEX_BYTES = 12 << 30  # 2B keys x ~6 B/key
FM_INDEX_BYTES = 120 << 30  # 304 GB text x ~0.4
COMPONENT_BYTES = 256 * 1024
NODE_BYTES = 64  # one trie node / one FM checkpoint line


def trie_layouts() -> dict[str, float]:
    """Modeled query latency per layout for a paper-scale trie."""
    # Componentized: open (tail) -> LUT (free) -> one leaf component.
    componentized = (
        LAT.round_latency([COMPONENT_BYTES])  # open: tail fetch
        + LAT.round_latency([COMPONENT_BYTES])  # one leaf
    )
    # Without the 8-level LUT: 8 extra dependent node-group hops before
    # reaching the leaf range.
    no_lut = componentized + 8 * LAT.round_latency([NODE_BYTES])
    # Monolithic: one giant sequential read.
    monolithic = LAT.request_latency(TRIE_INDEX_BYTES)
    # mmap-style: one request per node along the key path
    # (~128-bit keys -> ~40 distinguishing-node hops after sharing).
    mmap = 40 * LAT.round_latency([NODE_BYTES])
    return {
        "componentized": componentized,
        "no-LUT": no_lut,
        "monolithic": monolithic,
        "mmap": mmap,
    }


def fm_layouts(pattern_len: int = 12) -> dict[str, float]:
    componentized = (
        LAT.round_latency([COMPONENT_BYTES])
        + pattern_len * LAT.round_latency([COMPONENT_BYTES] * 2)
        + LAT.round_latency([COMPONENT_BYTES])  # locate round
    )
    monolithic = LAT.request_latency(FM_INDEX_BYTES)
    # mmap: every Occ touches a checkpoint line + a BWT word.
    mmap = pattern_len * 2 * LAT.round_latency([NODE_BYTES] * 2)
    return {
        "componentized": componentized,
        "monolithic": monolithic,
        "mmap": mmap,
    }


def test_ablation_trie_layout(benchmark):
    scenario = build_uuid_scenario(keys_per_file=10_000, files=2)
    key = scenario.uuid_gen.present_queries(1)[0]
    benchmark(lambda: scenario.client.search("uuid", UuidQuery(key), k=5))
    res = scenario.client.search("uuid", UuidQuery(key), k=5)
    modeled = trie_layouts()
    lines = [
        "=== Ablation: trie layout on object storage ===",
        f"measured micro trace: {res.stats.trace.total_requests} requests, "
        f"depth {res.stats.trace.depth}",
    ]
    for name, latency in sorted(modeled.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:>14}: {latency:9.3f} s (paper-scale model)")
    text = "\n".join(lines)
    print(text)
    write_result("ablation_trie_layout.txt", text)
    assert modeled["componentized"] < modeled["no-LUT"]
    assert modeled["componentized"] < modeled["mmap"]
    assert modeled["componentized"] < modeled["monolithic"] / 100


def test_ablation_fm_layout(benchmark):
    scenario = build_text_scenario(docs_per_file=200, files=2)
    gen = TextWorkload(seed=11, vocabulary_size=2000)
    docs = scenario.lake.to_pylist("text")
    needle = gen.present_queries(docs, 1, length=12)[0]
    benchmark(
        lambda: scenario.client.search("text", SubstringQuery(needle), k=5)
    )
    modeled = fm_layouts(pattern_len=len(needle))
    lines = ["=== Ablation: FM-index layout on object storage ==="]
    for name, latency in sorted(modeled.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:>14}: {latency:9.3f} s (paper-scale model)")
    text = "\n".join(lines)
    print(text)
    write_result("ablation_fm_layout.txt", text)
    # Componentized beats monolithic by orders of magnitude; the mmap
    # layout has comparable depth here but forfeits compression and
    # needs ~4x the requests per Occ in practice.
    assert modeled["componentized"] < modeled["monolithic"] / 100


def test_ablation_fm_block_size(benchmark):
    """Block size trades per-request bytes against cache-hit locality;
    both extremes still answer queries correctly."""
    from repro.indices.fm.fm_index import FmBuilder, FmQuerier
    from repro.core.index_file import (
        IndexFileReader,
        IndexFileWriter,
        PageDirectory,
    )
    from repro.formats.page_reader import PageEntry, PageTable
    from repro.storage.object_store import InMemoryObjectStore

    # Big enough that rank blocks miss the speculative tail cache.
    gen = TextWorkload(seed=3, vocabulary_size=1500)
    pages = [(g, gen.documents(700, avg_chars=450)) for g in range(3)]
    needle = pages[0][1][0][:10]
    results = {}
    for block_size in (4 * 1024, 64 * 1024):
        builder = FmBuilder.build(
            pages, block_size=block_size, sample_rate=32, store_pagemap=False
        )
        table = PageTable(
            "f", "text",
            [PageEntry("f", i, 4 + i * 10, 10, 250, i * 250, 1) for i in range(3)],
        )
        writer = IndexFileWriter("fm", "text", PageDirectory([table]))
        builder.write(writer)
        store = InMemoryObjectStore()
        store.put("i.index", writer.finish())
        querier = FmQuerier(IndexFileReader.open(store, "i.index"))
        store.start_trace()
        count = querier.count(needle)
        trace = store.stop_trace()
        results[block_size] = (count, trace.total_bytes, trace.total_requests)
    benchmark(lambda: results)
    counts = {c for c, _, _ in results.values()}
    assert len(counts) == 1  # correctness independent of block size
    small_bytes = results[4 * 1024][1]
    big_bytes = results[64 * 1024][1]
    lines = [
        "=== Ablation: FM block size ===",
        f"4 KB blocks:  {results[4*1024][2]} requests, "
        f"{small_bytes/1024:.0f} KB fetched",
        f"64 KB blocks: {results[64*1024][2]} requests, "
        f"{big_bytes/1024:.0f} KB fetched",
    ]
    text = "\n".join(lines)
    print(text)
    write_result("ablation_fm_block_size.txt", text)

"""Index construction microbenchmarks: the inputs behind ``ic_r``.

Measures this repo's actual (Python) build throughput per index type
and contrasts it with the calibrated native rates used to price
``ic_r`` in the TCO benches. The repro band for this paper notes that
"indexing performance needs native code" — this bench quantifies that
gap so the calibration in ``benchmarks/common.py`` is auditable rather
than asserted.
"""

import time


from repro.core.client import RottnestClient
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.text import TextWorkload
from repro.workloads.uuids import UuidWorkload
from repro.workloads.vectors import VectorWorkload

from benchmarks.common import NATIVE_INDEX_RATE, write_result


def make_lake(store, schema, batches):
    lake = LakeTable.create(
        store, "lake/b", schema,
        TableConfig(row_group_rows=5000, page_target_bytes=64 * 1024),
    )
    for batch in batches:
        lake.append(batch)
    return lake


def build_once(index_type, params=None):
    store = InMemoryObjectStore(clock=SimClock())
    if index_type == "fm":
        gen = TextWorkload(seed=0, vocabulary_size=2000)
        schema = Schema.of(Field("c", ColumnType.STRING))
        lake = make_lake(
            store, schema, [{"c": gen.documents(500, avg_chars=400)}]
        )
        column = "c"
    elif index_type in ("uuid_trie", "bloom"):
        gen = UuidWorkload(seed=0, nbytes=128)
        schema = Schema.of(Field("c", ColumnType.BINARY))
        lake = make_lake(store, schema, [{"c": gen.batch(20_000)}])
        column = "c"
    else:  # ivf_pq
        gen = VectorWorkload(dim=64, n_clusters=32, seed=0)
        schema = Schema.of(Field("c", ColumnType.VECTOR, vector_dim=64))
        lake = make_lake(store, schema, [{"c": gen.batch(8000)}])
        column = "c"
    client = RottnestClient(store, "idx/b", lake)
    data_bytes = lake.snapshot().total_bytes
    start = time.perf_counter()
    record = client.index(column, index_type, params=params)
    elapsed = time.perf_counter() - start
    return data_bytes, record, elapsed


def test_index_build_rates(benchmark):
    results = {}
    for index_type, params in [
        ("fm", {"block_size": 32 * 1024, "store_pagemap": False}),
        ("uuid_trie", None),
        ("bloom", None),
        ("ivf_pq", {"nlist": 48, "m": 16}),
    ]:
        data_bytes, record, elapsed = build_once(index_type, params)
        results[index_type] = (data_bytes, record.size, elapsed)
    benchmark(lambda: None)

    lines = [
        "=== Index build rates (this repo's Python vs calibrated native) ===",
        f"{'type':>10} | {'data KB':>8} | {'index KB':>8} | {'build s':>8} | "
        f"{'python MB/s':>11} | {'native cal. MB/s':>16}",
    ]
    for index_type, (data_bytes, index_bytes, elapsed) in results.items():
        python_rate = data_bytes / max(elapsed, 1e-9) / 1e6
        native = NATIVE_INDEX_RATE.get(index_type)
        native_text = f"{native / 1e6:16.1f}" if native else f"{'(n/a)':>16}"
        lines.append(
            f"{index_type:>10} | {data_bytes/1024:8.0f} | "
            f"{index_bytes/1024:8.0f} | {elapsed:8.2f} | "
            f"{python_rate:11.1f} | {native_text}"
        )
        assert elapsed < 120  # builds stay interactive at micro scale
    text = "\n".join(lines)
    print(text)
    write_result("index_build_rates.txt", text)

"""Maintenance benchmark: the parallel pipeline vs the serial loop.

Two measurements over the shared :mod:`repro.maintain.bench` scenario:

* **index scaling** — one ``index`` call covering a 40-file lake at
  workers 1/2/4 on byte-identical clones. Per-file page extraction is
  the fanned phase; plan and commit stay serial, so the modeled
  end-to-end speedup at 4 workers lands around 2.4x (gated >= 2x).
* **compact scaling** — 6 independent two-file merge groups at the
  same widths. The merge phase scales ~linearly with the pool; the
  end-to-end number is Amdahl-limited by the serial plan + commit,
  and both are reported so the regression gate pins each.

Latencies are *modeled* from request traces (round trips under
``LatencyModel``), not wall-clock — see ``repro/maintain/bench.py``.
"""

from __future__ import annotations

from repro.maintain.bench import run_maintain_bench

from benchmarks.common import write_bench, write_result

WORKERS = (1, 2, 4)


def test_maintain_scaling(benchmark):
    """Index >=2x at 4 workers; compact merge phase scales too."""
    result = benchmark.pedantic(
        lambda: run_maintain_bench(workers=WORKERS), rounds=1, iterations=1
    )
    text = result.describe()
    print(text)
    write_result("maintenance_scaling.txt", text)
    write_bench(
        "maintenance",
        "index_scaling",
        params={
            "files": result.files,
            "rows": result.rows,
            "workers": list(WORKERS),
        },
        metrics={
            **{
                f"index_modeled_ms_{w}_workers": result.index_modeled_ms[w]
                for w in WORKERS
            },
            "index_speedup_4x": result.index_speedup(4),
            "index_worker_tasks": result.index_worker_tasks[4],
        },
    )
    write_bench(
        "maintenance",
        "compact_scaling",
        params={"merge_groups": result.compact_groups,
                "workers": list(WORKERS)},
        metrics={
            **{
                f"compact_modeled_ms_{w}_workers": result.compact_modeled_ms[w]
                for w in WORKERS
            },
            **{
                f"compact_merge_ms_{w}_workers": result.compact_merge_ms[w]
                for w in WORKERS
            },
            "compact_speedup_4x": result.compact_speedup(4),
            "compact_merge_speedup_4x": result.merge_speedup(4),
        },
    )
    # Acceptance: the tentpole's >=2x modeled index-build speedup at
    # 4 workers, monotone scaling, and identical fan-out either way.
    assert result.index_speedup(4) >= 2.0
    assert result.index_speedup(2) > 1.0
    assert (
        result.index_modeled_ms[4]
        < result.index_modeled_ms[2]
        < result.index_modeled_ms[1]
    )
    assert (
        result.index_worker_tasks[1]
        == result.index_worker_tasks[4]
        == result.files
    )
    # Compact: the merge phase itself must scale even though the
    # end-to-end number is Amdahl-limited by plan + commit.
    assert result.compact_groups >= 2
    assert result.merge_speedup(4) >= 2.0
    assert result.compact_speedup(4) > 1.0

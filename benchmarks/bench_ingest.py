"""Real-time ingest benchmark: freshness lag under concurrent write+read.

One seeded interleaved run from :mod:`repro.ingest.bench`: writers ack
batches into the WAL, readers immediately probe for the just-acked keys
(fresh recall must be perfect — that is the ack contract), a drain
fires every few batches, and after the final drain the same keys are
probed again through the lazy tier. Three families of numbers land in
``BENCH_ingest.json`` for the regression gate:

* **freshness** — the drainer-measured lag (lake commit time minus WAL
  PUT time on the shared sim clock) p50/p99, plus row conservation
  across the handoff;
* **fresh queries** — modeled p50/p99 of probes answered from the
  in-memory tier while segments are still undrained;
* **lazy queries** — modeled p50/p99 of the same keys after the drain,
  answered by the indexed lake.

Everything is modeled from request traces under the sim clock, so the
persisted numbers are deterministic and ``tests/test_bench_regression.py``
pins them against ``benchmarks/baselines/BENCH_ingest.json``.
"""

from __future__ import annotations

from repro.ingest.bench import run_ingest_bench

from benchmarks.common import write_bench, write_result


def test_ingest_freshness_and_latency(benchmark):
    result = benchmark(lambda: run_ingest_bench())

    text = (
        "=== ingest: freshness lag + merged fresh/lazy queries (modeled) ===\n"
        + result.describe()
    )
    print(text)
    write_result("ingest_freshness.txt", text)

    write_bench(
        "ingest",
        "freshness",
        params={
            "batches": result.batches,
            "rows": result.rows,
            "drain_every": result.drain_every,
            "interval_s": result.interval_s,
            "max_lag_s": result.max_lag_s,
        },
        metrics={
            "freshness_lag_p50_s": result.lag_p50_s,
            "freshness_lag_p99_s": result.lag_p99_s,
            "segments_drained": result.lag_count,
            "drains": result.drains,
            "ingested_rows": result.ingested_rows,
            "drained_rows": result.drained_rows,
        },
    )
    write_bench(
        "ingest",
        "fresh_queries",
        metrics={
            "hit_rate": result.fresh_recall,
            "p50_modeled_ms": result.fresh_p50_ms,
            "p99_modeled_ms": result.fresh_p99_ms,
            "probes": result.fresh_probes,
        },
    )
    write_bench(
        "ingest",
        "lazy_queries",
        metrics={
            "hit_rate": result.lazy_recall,
            "p50_modeled_ms": result.lazy_p50_ms,
            "p99_modeled_ms": result.lazy_p99_ms,
            "probes": result.lazy_probes,
        },
    )

    # Acceptance (ISSUE 7): acked means searchable (perfect fresh
    # recall before any index covers the rows), nothing dropped or
    # duplicated across the handoff, and the measured freshness lag
    # stays inside the configured budget.
    assert result.fresh_recall == 1.0
    assert result.lazy_recall == 1.0
    assert result.drained_rows == result.ingested_rows
    assert result.lag_count > 0
    assert result.lag_p99_s <= result.max_lag_s
    assert result.ok

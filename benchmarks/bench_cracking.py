"""Cracking benchmark: adaptive indexing vs eager-build vs pure lazy.

One seeded run from :mod:`repro.crack.bench`: the same Zipf(1.1) query
trace plays against three deployments of the same lake — index
everything up front (eager), never index (lazy), and the cracking
controller closing the observe→rank→act loop once per tick. Two
families of numbers land in ``BENCH_cracking.json`` for the regression
gate:

* **build IO** — bytes moved by maintenance, where cracked must come
  in at or under eager (it skips the cold tail of the Zipf curve);
* **hot-query p50** — modeled latency on probes drawn from the hot
  files after convergence, where cracked must sit within a small
  factor of fully-eager and well ahead of lazy.

Everything runs on a sim clock from one seed, so the persisted numbers
are deterministic and ``tests/test_bench_regression.py`` pins them
against ``benchmarks/baselines/BENCH_cracking.json``. All metric names
read lower-is-better, matching the gate's direction heuristics.
"""

from __future__ import annotations

from repro.crack.bench import run_crack_bench

from benchmarks.common import write_bench, write_result


def test_cracking_io_and_hot_latency(benchmark):
    result = benchmark(lambda: run_crack_bench())

    text = (
        "=== cracking: build IO + hot-query p50 vs eager/lazy (modeled) ===\n"
        + result.describe()
    )
    print(text)
    write_result("cracking.txt", text)

    write_bench(
        "cracking",
        "zipf_adaptive",
        params={
            "files": result.files,
            "rows": result.rows,
            "ticks": result.ticks,
            "queries_per_tick": result.queries_per_tick,
            "zipf_s": result.zipf_s,
            "seed": result.seed,
            "p50_budget_ratio": result.p50_budget_ratio,
        },
        metrics={
            "eager_index_io_bytes": result.eager_index_io,
            "cracked_index_io_bytes": result.cracked_index_io,
            "index_io_ratio": result.io_ratio,
            "eager_hot_p50_ms": result.eager_hot_p50_ms,
            "cracked_hot_p50_ms": result.cracked_hot_p50_ms,
            "lazy_hot_p50_ms": result.lazy_hot_p50_ms,
            "hot_p50_ratio": result.hot_p50_ratio,
            "cracked_indexed_files": result.cracked_indexed_files,
            "ticks_to_cover": result.ticks_to_cover,
        },
    )

    # Acceptance (ISSUE 9): cracked spends no more build IO than eager
    # on the Zipf(1.1) trace, serves hot queries within the p50 budget
    # of fully-eager (and strictly ahead of lazy), covers the whole hot
    # set, and leaves at least one cold file brute-force.
    assert result.cracked_index_io <= result.eager_index_io
    assert (
        result.cracked_hot_p50_ms
        <= result.p50_budget_ratio * result.eager_hot_p50_ms
    )
    assert result.cracked_hot_p50_ms < result.lazy_hot_p50_ms
    assert result.hot_coverage == 1.0
    assert result.cold_files >= 1
    assert result.ok

"""Shared benchmark scaffolding.

Each figure benchmark builds an MB-scale simulated deployment, measures
per-query behaviour (request traces -> modeled latency, bytes, request
counts), and *scales storage-linear quantities* to the paper's dataset
sizes (304 GB C4 text, 2 B x 128 B hashes, SIFT-1B). §VII-D2 of the
paper justifies the linear extrapolation: all TCO parameters except
``cpq_r`` scale almost perfectly linearly with dataset size under a
fixed distribution, and ``cpq_r`` is ~constant after index compaction.

Indexing compute (``ic_r``) is priced with calibrated *native* indexing
throughputs rather than this repo's Python wall-clock (the paper's
indexer is Rust; pricing Python's slowness into the TCO would distort
the diagrams — see EXPERIMENTS.md "Substitutions").
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.client import RottnestClient, SearchResult
from repro.engines.bruteforce import BruteForceModel
from repro.obs.export import update_bench_json
from repro.engines.dedicated import OPENSEARCH_MODEL
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.costs import GB, CostModel
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore
from repro.tco.model import ApproachCost
from repro.util.clock import SimClock
from repro.workloads.text import TextWorkload
from repro.workloads.uuids import UuidWorkload
from repro.workloads.vectors import VectorWorkload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Paper dataset sizes (compressed bytes on S3).
PAPER_TEXT_BYTES = 304 * GB
PAPER_UUID_BYTES = 2_000_000_000 * 128  # 2B 128-byte hashes, ~fully random
PAPER_VECTOR_BYTES = 1_000_000_000 * 128  # SIFT-1B at 128 x u8 -> bytes

#: Calibrated end-to-end native indexing throughput (bytes of raw data
#: per second per c6i.2xlarge, including compaction passes) per index
#: type; see EXPERIMENTS.md. The paper's indexer is native Rust, so
#: pricing ic_r off this repo's Python wall-clock would distort TCO.
NATIVE_INDEX_RATE = {"fm": 8e6, "uuid_trie": 6e6, "ivf_pq": 0.8e6}

#: Rottnest single-searcher latencies the paper reports at full dataset
#: scale (§VII-A). Micro-scale simulated indices are shallower, so the
#: headline phase diagrams use these; the measured-micro variants are
#: reported alongside.
PAPER_LATENCY = {"fm": 4.6, "uuid_trie": 1.7, "ivf_pq": 2.3}

SEARCHER_INSTANCE = "c6i.2xlarge"
BRUTE_WORKERS = 8  # the paper's most cost-efficient brute configuration

#: Per-workload brute-force scan models. The per-worker rate is the
#: decompress+match throughput of one r6i.4xlarge, calibrated so the
#: 64-worker latencies land near the paper's §VII-A numbers
#: (substring 19.8 s, UUID 7.3 s, vector 12.4 s at full dataset scale).
BRUTE_MODELS = {
    "fm": BruteForceModel(scan_rate_bytes_per_s=0.35e9),
    "uuid_trie": BruteForceModel(scan_rate_bytes_per_s=0.9e9),
    "ivf_pq": BruteForceModel(scan_rate_bytes_per_s=0.23e9),
}

COSTS = CostModel()
LATENCY = LatencyModel()


def results_path(name: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return os.path.join(RESULTS_DIR, name)


def write_result(name: str, text: str) -> None:
    with open(results_path(name), "w") as f:
        f.write(text if text.endswith("\n") else text + "\n")


def write_bench(
    bench: str,
    measurement: str,
    *,
    metrics: dict,
    params: dict | None = None,
) -> dict:
    """Merge one measurement into ``results/BENCH_<bench>.json``.

    Machine-readable companion to :func:`write_result`: successive PRs
    diff these files to track the perf trajectory (schema in
    :mod:`repro.obs.export`).
    """
    return update_bench_json(
        results_path(f"BENCH_{bench}.json"),
        bench,
        measurement,
        metrics=metrics,
        params=params,
    )


@dataclass
class Scenario:
    """One simulated deployment plus its measured sizes."""

    store: InMemoryObjectStore
    lake: LakeTable
    client: RottnestClient
    column: str
    index_type: str
    data_bytes: int
    index_bytes: int

    @property
    def expansion(self) -> float:
        """Index bytes per data byte (drives ``cpm_r``)."""
        return self.index_bytes / self.data_bytes


def build_text_scenario(
    *,
    docs_per_file: int = 400,
    files: int = 3,
    avg_chars: int = 400,
    seed: int = 0,
) -> Scenario:
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("text", ColumnType.STRING))
    lake = LakeTable.create(
        store, "lake/text", schema,
        TableConfig(row_group_rows=2000, page_target_bytes=64 * 1024),
    )
    gen = TextWorkload(seed=seed, vocabulary_size=2000)
    for _ in range(files):
        lake.append({"text": gen.documents(docs_per_file, avg_chars)})
    client = RottnestClient(store, "idx/text", lake)
    client.index(
        "text",
        "fm",
        params={
            "block_size": 32 * 1024,
            "sample_rate": 64,
            # The paper's storage profile: no per-position page map.
            "store_pagemap": False,
        },
    )
    return Scenario(
        store=store,
        lake=lake,
        client=client,
        column="text",
        index_type="fm",
        data_bytes=lake.snapshot().total_bytes,
        index_bytes=store.total_bytes("idx/text/files/"),
    )


def build_uuid_scenario(
    *, keys_per_file: int = 8000, files: int = 3, seed: int = 0,
    key_nbytes: int = 128,
) -> Scenario:
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("uuid", ColumnType.BINARY))
    lake = LakeTable.create(
        store, "lake/uuid", schema,
        TableConfig(row_group_rows=4000, page_target_bytes=64 * 1024),
    )
    gen = UuidWorkload(seed=seed, nbytes=key_nbytes)  # paper: 128-byte hashes
    for _ in range(files):
        lake.append({"uuid": gen.batch(keys_per_file)})
    client = RottnestClient(store, "idx/uuid", lake)
    client.index("uuid", "uuid_trie")
    scenario = Scenario(
        store=store,
        lake=lake,
        client=client,
        column="uuid",
        index_type="uuid_trie",
        data_bytes=lake.snapshot().total_bytes,
        index_bytes=store.total_bytes("idx/uuid/files/"),
    )
    scenario.uuid_gen = gen  # type: ignore[attr-defined]
    return scenario


def build_vector_scenario(
    *,
    vectors_per_file: int = 3000,
    files: int = 2,
    dim: int = 64,
    nlist: int = 48,
    m: int = 16,
    seed: int = 0,
    n_clusters: int = 48,
    noise_scale: float = 1.0,
) -> Scenario:
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("emb", ColumnType.VECTOR, vector_dim=dim))
    lake = LakeTable.create(
        store, "lake/vec", schema,
        TableConfig(row_group_rows=5000, page_target_bytes=64 * 1024),
    )
    gen = VectorWorkload(
        dim=dim, n_clusters=n_clusters, noise_scale=noise_scale, seed=seed
    )
    chunks = [gen.batch(vectors_per_file) for _ in range(files)]
    for chunk in chunks:
        lake.append({"emb": chunk})
    client = RottnestClient(store, "idx/vec", lake)
    client.index("emb", "ivf_pq", params={"nlist": nlist, "m": m})
    scenario = Scenario(
        store=store,
        lake=lake,
        client=client,
        column="emb",
        index_type="ivf_pq",
        data_bytes=lake.snapshot().total_bytes,
        index_bytes=store.total_bytes("idx/vec/files/"),
    )
    scenario.vector_gen = gen  # type: ignore[attr-defined]
    scenario.corpus = np.vstack(chunks)  # type: ignore[attr-defined]
    return scenario


def mean_search_latency(results: list[SearchResult]) -> float:
    """Average modeled wall-clock latency over search results."""
    return float(
        np.mean([r.stats.estimated_latency(LATENCY) for r in results])
    )


def searcher_cpq(latency_s: float) -> float:
    """Dollars per Rottnest query: one searcher instance for the query's
    duration (shared-nothing, §VIII)."""
    return latency_s * COSTS.instance_hourly(SEARCHER_INSTANCE) / 3600.0


def approaches_for(
    *,
    name_suffix: str,
    paper_bytes: int,
    expansion: float,
    rottnest_latency_s: float,
    index_type: str,
    dedicated_model=OPENSEARCH_MODEL,
    brute_model: BruteForceModel | None = None,
    extra_monthly_storage_bytes: float = 0.0,
) -> tuple[ApproachCost, ApproachCost, ApproachCost]:
    """(copy_data, brute_force, rottnest) at paper scale."""
    brute_model = brute_model or BRUTE_MODELS.get(index_type, BruteForceModel())
    cpm_i = dedicated_model.monthly_cost(paper_bytes, COSTS)
    cpm_bf = COSTS.storage_monthly(paper_bytes)
    cpq_bf = brute_model.cost_per_query(paper_bytes, BRUTE_WORKERS, COSTS)
    brute_latency = brute_model.latency(paper_bytes, BRUTE_WORKERS)
    index_bytes = paper_bytes * expansion + extra_monthly_storage_bytes
    cpm_r = COSTS.storage_monthly(int(paper_bytes + index_bytes))
    ic_r = (
        paper_bytes
        / NATIVE_INDEX_RATE[index_type]
        * COSTS.instance_hourly(SEARCHER_INSTANCE)
        / 3600.0
    )
    copy = ApproachCost(
        name="copy-data",
        cost_per_month=cpm_i,
        min_latency_s=dedicated_model.query_latency_s,
    )
    brute = ApproachCost(
        name="brute-force",
        cost_per_month=cpm_bf,
        cost_per_query=cpq_bf,
        min_latency_s=brute_latency,
    )
    rott = ApproachCost(
        name="rottnest",
        index_cost=ic_r,
        cost_per_month=cpm_r,
        cost_per_query=searcher_cpq(rottnest_latency_s),
        min_latency_s=rottnest_latency_s,
    )
    return copy, brute, rott

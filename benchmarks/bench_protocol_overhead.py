"""Protocol overhead audit: object-store requests per API call.

The paper's pitch is that the protocol is *lightweight*: indexing adds
one PUT + one metadata commit on top of reading the new data; search
adds a handful of GETs; vacuum is the only LIST-heavy call and is
explicitly expected to be infrequent (§IV-C). This bench counts actual
requests per call so the claim is auditable, and prices the protocol's
S3 request costs to confirm they are "eclipsed by compute resource
costs" (§VI footnote on ``ic_r``).
"""


from repro.core.client import RottnestClient
from repro.core.maintenance import compact_indices, vacuum_indices
from repro.core.queries import UuidQuery
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.costs import CostModel
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.uuids import UuidWorkload

from benchmarks.common import write_result


def test_protocol_request_budget(benchmark):
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("uuid", ColumnType.BINARY))
    lake = LakeTable.create(
        store, "lake/p", schema,
        TableConfig(row_group_rows=4000, page_target_bytes=32 * 1024),
    )
    gen = UuidWorkload(seed=0, nbytes=128)
    client = RottnestClient(store, "idx/p", lake)
    costs = CostModel()

    budgets = {}

    def measure(label, fn):
        before = store.stats.snapshot()
        result = fn()
        delta = store.stats.delta(before)
        budgets[label] = delta
        return result

    measure("append 5k rows", lambda: lake.append({"uuid": gen.batch(5000)}))
    measure("index (first)", lambda: client.index("uuid", "uuid_trie"))
    lake.append({"uuid": gen.batch(5000)})
    measure("index (incremental)", lambda: client.index("uuid", "uuid_trie"))
    key = gen.present_queries(1)[0]
    measure("search (hit)", lambda: client.search("uuid", UuidQuery(key), k=5))
    measure(
        "search (miss)",
        lambda: client.search("uuid", UuidQuery(gen.absent_queries(1)[0]), k=5),
    )
    measure("compact", lambda: compact_indices(client, "uuid", "uuid_trie"))
    measure(
        "vacuum",
        lambda: vacuum_indices(client, snapshot_id=lake.latest_version()),
    )
    benchmark(lambda: client.search("uuid", UuidQuery(key), k=5))

    lines = [
        "=== Protocol request budget (per API call) ===",
        f"{'call':>20} | {'GET':>5} | {'PUT':>4} | {'LIST':>4} | "
        f"{'DEL':>4} | {'HEAD':>4} | {'$ requests':>10}",
    ]
    for label, d in budgets.items():
        dollars = costs.request_cost(gets=d.gets, puts=d.puts, lists=d.lists)
        lines.append(
            f"{label:>20} | {d.gets:>5} | {d.puts:>4} | {d.lists:>4} | "
            f"{d.deletes:>4} | {d.heads:>4} | ${dollars:.2e}"
        )
    text = "\n".join(lines)
    print(text)
    write_result("protocol_overhead.txt", text)

    # The lightweight-protocol claims, as assertions:
    # indexing writes exactly the index file + one metadata commit
    # (checkpoint commits excluded at this cadence).
    assert budgets["index (incremental)"].puts <= 3
    # search is a handful of requests, no LISTs beyond log discovery.
    assert budgets["search (hit)"].gets <= 25
    assert budgets["search (hit)"].deletes == 0
    # vacuum is the only deliberately LIST-heavy call.
    assert budgets["vacuum"].lists >= 1
    # Request dollars are negligible vs compute (§VI): << $0.01/query.
    hit = budgets["search (hit)"]
    assert costs.request_cost(gets=hit.gets, lists=hit.lists) < 1e-4

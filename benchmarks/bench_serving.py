"""Serving benchmark: the `repro.serve` subsystem end to end.

Three measurements:

* **cold vs warm** — repeated-query latency through the caching store:
  the first query pays every metadata/index/page round trip; repeats
  are served from the LRU, so modeled latency drops strictly below the
  cold query and the cache reports a nonzero hit rate.
* **executor scaling (Fig. 8c/8d shape)** — one query fanned across
  1..16 searchers: latency falls until the plan's width saturates, is
  ~flat beyond it (depth-bound), while cost per query grows ~linearly
  with searcher count.
* **concurrent clients** — many clients over one server: admission
  control holds, single-flight dedup collapses identical queries, and
  the ServeStats report feeds the §VII-D3 throughput model a measured
  requests-per-query value.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.client import RottnestClient
from repro.core.queries import UuidQuery
from repro.lake.table import LakeTable, TableConfig
from repro.formats.schema import ColumnType, Field, Schema
from repro.obs import TelemetryHub, use_hub, write_telemetry_json
from repro.serve import CachingObjectStore, SearchExecutor, SearchServer
from repro.storage.costs import CostModel
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.uuids import UuidWorkload

from benchmarks.common import (
    SEARCHER_INSTANCE,
    build_uuid_scenario,
    results_path,
    write_bench,
    write_result,
)

COSTS = CostModel()
LAT = LatencyModel()
SEARCHER_HOURLY = COSTS.instance_hourly(SEARCHER_INSTANCE)


def _serving_stack(scenario, **server_kwargs):
    """Re-open a scenario's lake + client through a caching store and
    put a SearchServer in front."""
    cached = CachingObjectStore(scenario.store)
    lake = LakeTable.open(cached, scenario.lake.root)
    client = RottnestClient(cached, scenario.client.index_dir, lake)
    return SearchServer(client, **server_kwargs)


@pytest.fixture(scope="module")
def uuid_scenario():
    return build_uuid_scenario(keys_per_file=6000, files=3)


def test_cold_vs_warm_repeated_query(uuid_scenario, benchmark):
    """Warm-cache repeated queries beat the cold query strictly."""
    scenario = uuid_scenario
    measured_key = scenario.uuid_gen.present_queries(1)[0]
    server = _serving_stack(scenario, max_searchers=4, max_inflight=4)
    with server:
        query = UuidQuery(measured_key)
        cold_result = server.query(scenario.column, query, k=5)
        cold = server.stats.last_latency_s
        warm_latencies = []
        for _ in range(5):
            warm_result = server.query(scenario.column, query, k=5)
            warm_latencies.append(server.stats.last_latency_s)
        # Benchmark wall-clock of the (warm) serve path itself.
        benchmark(lambda: server.query(scenario.column, query, k=5))
        stats = server.stats
        lines = [
            "=== serving: cold vs warm repeated query (modeled) ===",
            f"cold:  {cold * 1000:8.1f} ms",
            f"warm:  {max(warm_latencies) * 1000:8.1f} ms (worst of 5)",
            stats.describe(server.max_inflight),
        ]
        text = "\n".join(lines)
        print(text)
        write_result("serving_cold_warm.txt", text)
        write_bench(
            "serving",
            "cold_vs_warm",
            params={"max_searchers": 4, "warm_repeats": 5},
            metrics={
                "cold_modeled_ms": cold * 1000,
                "warm_worst_modeled_ms": max(warm_latencies) * 1000,
                "cache_hit_rate": stats.cache_hit_rate,
                "requests_per_query": stats.requests_per_query,
            },
        )
        # Acceptance: warm strictly below cold, nonzero hit rate,
        # identical results.
        assert max(warm_latencies) < cold
        assert stats.cache_hit_rate > 0
        assert [(m.file, m.row) for m in warm_result.matches] == [
            (m.file, m.row) for m in cold_result.matches
        ]
        # The measured requests/query feeds the §VII-D3 model.
        model = stats.throughput_model()
        assert model.rottnest_requests_per_query == pytest.approx(
            stats.requests_per_query
        )
        assert model.rottnest_max_qps > 0


def _incremental_uuid_deployment(files: int = 3, keys_per_file: int = 4000):
    """A lake indexed file-by-file, so one query probes ``files``
    independent index files — the parallel width Fig. 8c exploits."""
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("uuid", ColumnType.BINARY))
    lake = LakeTable.create(
        store, "lake/uuid", schema,
        TableConfig(row_group_rows=2000, page_target_bytes=64 * 1024),
    )
    gen = UuidWorkload(seed=3, nbytes=128)
    client = RottnestClient(store, "idx/uuid", lake)
    for _ in range(files):
        lake.append({"uuid": gen.batch(keys_per_file)})
        client.index("uuid", "uuid_trie")
    return client, gen


def test_executor_scaling_fig8cd_shape(benchmark):
    """Latency ~flat once searchers cover the plan's width; cost grows
    ~linearly with searchers (Fig. 8c/8d)."""
    client, gen = _incremental_uuid_deployment(files=3)
    query = UuidQuery(gen.present_queries(1)[0])
    benchmark(lambda: client.search("uuid", query, k=5))
    sequential = client.search("uuid", query, k=5)
    widths = [1, 2, 4, 8, 16]
    rows = []
    for width in widths:
        with SearchExecutor(client, max_searchers=width) as executor:
            result = executor.search("uuid", query, k=5)
        assert [(m.file, m.row) for m in result.matches] == [
            (m.file, m.row) for m in sequential.matches
        ]
        latency = result.stats.estimated_latency(LAT)
        cost = latency * width * SEARCHER_HOURLY / 3600.0
        rows.append((width, latency, cost))
    lines = ["=== serving: executor scaling with max_searchers ==="]
    for width, latency, cost in rows:
        lines.append(
            f"  searchers={width:>2}: latency={latency * 1000:7.1f} ms  "
            f"cost/query=${cost:.2e}"
        )
    text = "\n".join(lines)
    print(text)
    write_result("serving_scaling.txt", text)
    write_bench(
        "serving",
        "executor_scaling",
        params={"files": 3, "widths": list(widths)},
        metrics={
            **{
                f"latency_ms_{width}_searchers": latency * 1000
                for width, latency, _ in rows
            },
            **{
                f"cost_usd_{width}_searchers": cost
                for width, _, cost in rows
            },
        },
    )
    latencies = {w: l for w, l, _ in rows}
    costs = {w: c for w, _, c in rows}
    # More searchers never hurt latency...
    for earlier, later in zip(widths, widths[1:]):
        assert latencies[later] <= latencies[earlier] * 1.001
    # ...but once the plan's width is covered, latency is flat
    # (depth-bound) while cost keeps growing linearly with searchers.
    flat = [latencies[w] for w in (4, 8, 16)]
    assert max(flat) == pytest.approx(min(flat), rel=0.05)
    assert costs[16] / costs[4] == pytest.approx(4.0, rel=0.05)
    assert costs[16] > costs[1]


def test_concurrent_clients(uuid_scenario, benchmark):
    """Many clients through one server: everything stays correct and
    the dedup/admission counters add up."""
    scenario = uuid_scenario
    keys = scenario.uuid_gen.present_queries(4)
    server = _serving_stack(
        scenario, max_searchers=2, max_inflight=8
    )
    hub = TelemetryHub()
    with use_hub(hub), server:
        server.warmup()
        benchmark(lambda: server.query(scenario.column, UuidQuery(keys[0]), k=3))
        baseline_queries = server.stats.queries
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def client_loop(client_id: int) -> None:
            try:
                out = []
                for repeat in range(3):
                    query = UuidQuery(keys[(client_id + repeat) % len(keys)])
                    result = server.query(scenario.column, query, k=3)
                    out.append([(m.file, m.row) for m in result.matches])
                results[client_id] = out
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=client_loop, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = server.stats
        lines = [
            "=== serving: 6 concurrent clients x 3 queries ===",
            stats.describe(server.max_inflight),
        ]
        text = "\n".join(lines)
        print(text)
        write_result("serving_concurrent.txt", text)
        write_bench(
            "serving",
            "concurrent_clients",
            params={"clients": 6, "repeats": 3, "max_inflight": 8},
            metrics={
                "queries": stats.queries,
                "deduplicated": stats.deduplicated,
                "cache_hit_rate": stats.cache_hit_rate,
                "p50_modeled_ms": stats.p50_s * 1000,
                "p99_modeled_ms": stats.p99_s * 1000,
                "qps_ceiling": stats.qps_estimate(server.max_inflight),
            },
        )
        assert len(results) == 6
        # Every client sees the same answer for the same key.
        reference = {}
        for client_id, out in results.items():
            for repeat, matches in enumerate(out):
                key = keys[(client_id + repeat) % len(keys)]
                reference.setdefault(key, matches)
                assert reference[key] == matches
        assert stats.queries == baseline_queries + 6 * 3
        assert stats.cache_hit_rate > 0
        assert stats.qps_estimate(server.max_inflight) > 0
        # Persist the hub so the CI slo-gate job (and `repro dashboard`)
        # can evaluate exactly what this run observed.
        snap = server.client.lake.snapshot()
        hub.ledger.set_storage(
            data_bytes=snap.total_bytes,
            index_bytes=sum(r.size for r in server.client.meta.records()),
        )
        payload = write_telemetry_json(
            results_path("TELEMETRY_serving.json"),
            hub,
            source="bench_serving.test_concurrent_clients",
        )
        # Every caller lands in the series; dedup means the ledger
        # bills fewer flights than callers, but never zero.
        assert hub.series("serve.queries").count() >= 6 * 3
        assert 1 <= payload["hub"]["ledger"]["serve_queries"] <= stats.queries


def test_flight_recorder_overhead(uuid_scenario, benchmark):
    """The tail-sampling flight recorder stays off the serve path's
    critical path: modeled p50 with the recorder armed (and actually
    retaining traces) is within 5% of the recorder-off baseline.

    The latency model prices store round trips, so any recorder cost
    that leaked into modeled time — an extra fetch, a synchronous
    persist — would move this ratio. Wall-clock bookkeeping overhead
    is measured by the `benchmark` fixture on the recorder-on path.
    """
    from repro.obs.flight import FlightRecorder, use_flight_recorder
    from repro.obs.slo import default_slo

    scenario = uuid_scenario
    # Distinct keys: a repeated key is served from the LRU at modeled
    # zero, which would collapse p50 and hide the recorder entirely.
    keys = scenario.uuid_gen.present_queries(12)

    def run(recorder):
        server = _serving_stack(scenario, max_searchers=2, max_inflight=4)
        hub = TelemetryHub()
        with use_hub(hub), use_flight_recorder(recorder), server:
            server.warmup()
            for key in keys:
                server.query(scenario.column, UuidQuery(key), k=3)
            # Snapshot p50 BEFORE the wall-clock loop: benchmark()
            # replays one (cached) query many times and would drag the
            # recorder-on percentile toward zero asymmetrically.
            p50 = server.stats.p50_s
            if recorder is not None:
                benchmark(
                    lambda: server.query(
                        scenario.column, UuidQuery(keys[0]), k=3
                    )
                )
            return p50

    baseline_p50 = run(None)
    # An impossibly tight SLO forces retention on every query, so the
    # measured path includes the recorder's worst case: evaluate SLO,
    # absorb the sample, serialize the span tree into the ring.
    recorder = FlightRecorder(
        scenario.store,
        slo=default_slo(latency_p99_s=1e-6),
        min_samples=5,
    )
    flight_p50 = run(recorder)
    ratio = flight_p50 / baseline_p50
    lines = [
        "=== serving: flight recorder overhead on modeled p50 ===",
        f"baseline p50: {baseline_p50 * 1000:8.3f} ms",
        f"recorder p50: {flight_p50 * 1000:8.3f} ms",
        f"ratio:        {ratio:8.4f}  (gate <= 1.05)",
        f"retained:     {len(recorder)} trace(s), {recorder.observed} observed",
    ]
    text = "\n".join(lines)
    print(text)
    write_result("serving_flight_overhead.txt", text)
    write_bench(
        "serving",
        "flight_overhead",
        params={"repeats": 12, "max_searchers": 2, "min_samples": 5},
        metrics={
            "baseline_p50_modeled_ms": baseline_p50 * 1000,
            "flight_p50_modeled_ms": flight_p50 * 1000,
            "overhead_ratio": ratio,
            "retained_traces": float(len(recorder)),
        },
    )
    # Gate: the recorder must not perturb the modeled serve path.
    assert recorder.observed > 0 and len(recorder) > 0
    assert ratio <= 1.05, (
        f"flight recorder moved modeled p50 by {ratio:.3f}x (> 1.05)"
    )

"""Figure 7: phase diagrams for (a) substring and (b) UUID search.

Builds both exact-search deployments, measures Rottnest's per-query
trace latency, scales storage terms to the paper's dataset sizes, and
prints/persists the phase diagrams plus their boundary lines. Expected
shape (paper §VII-B1):

* Rottnest's win band spans ~4 orders of magnitude of query count at
  10 months for both workloads;
* the Rottnest/brute-force boundary *curves up* for substring search
  (the FM index is nearly as large as the compressed data) but stays
  flat for UUID search (tiny trie index);
* break-even onset is days, not months.
"""

import pytest

from repro.core.queries import SubstringQuery, UuidQuery
from repro.tco.phase import compute_phase_diagram
from repro.tco.render import describe_boundaries, render
from repro.workloads.text import TextWorkload

from benchmarks.common import (
    PAPER_TEXT_BYTES,
    PAPER_UUID_BYTES,
    approaches_for,
    build_text_scenario,
    build_uuid_scenario,
    mean_search_latency,
    write_result,
)


@pytest.fixture(scope="module")
def text_scenario():
    return build_text_scenario(docs_per_file=400, files=3, avg_chars=400)


@pytest.fixture(scope="module")
def uuid_scenario():
    return build_uuid_scenario(keys_per_file=30_000, files=3)


def _report(name, scenario, paper_bytes, queries, title):
    from benchmarks.common import PAPER_LATENCY

    results = [
        scenario.client.search(scenario.column, q, k=10) for q in queries
    ]
    measured = mean_search_latency(results)
    calibrated = PAPER_LATENCY[scenario.index_type]
    copy, brute, rott = approaches_for(
        name_suffix=name,
        paper_bytes=paper_bytes,
        expansion=scenario.expansion,
        rottnest_latency_s=calibrated,
        index_type=scenario.index_type,
    )
    diagram = compute_phase_diagram([copy, brute, rott])
    # Secondary variant: fully measured micro-scale latency.
    _, _, rott_micro = approaches_for(
        name_suffix=name,
        paper_bytes=paper_bytes,
        expansion=scenario.expansion,
        rottnest_latency_s=measured,
        index_type=scenario.index_type,
    )
    micro = compute_phase_diagram([copy, brute, rott_micro])
    lines = [
        f"=== Figure 7{title} ===",
        f"measured index expansion: {scenario.expansion:.3f} bytes/byte",
        f"rottnest latency: measured {measured*1000:.1f} ms at micro "
        f"scale; paper-calibrated {calibrated:.1f} s used for the diagram",
        f"cpq_r=${rott.cost_per_query:.2e}  cpq_bf=${brute.cost_per_query:.3f}"
        f"  cpm_r=${rott.cost_per_month:.0f}/mo  cpm_bf=${brute.cost_per_month:.0f}/mo"
        f"  cpm_i=${copy.cost_per_month:.0f}/mo  ic_r=${rott.index_cost:.1f}",
        render(diagram),
        "",
        describe_boundaries(diagram, [0.1, 1.0, 10.0, 100.0]),
        "",
        f"win band at 10 months: {diagram.win_band('rottnest', 10.0)}",
        f"orders of magnitude won at 10 months: "
        f"{diagram.orders_of_magnitude_won('rottnest', 10.0):.2f}",
        f"break-even onset at 1e4 queries: "
        f"{diagram.break_even_months('rottnest', 1e4):.3f} months",
        f"[micro-latency variant] win band at 10 months: "
        f"{micro.win_band('rottnest', 10.0)}",
    ]
    text = "\n".join(lines)
    print(text)
    write_result(f"fig7_{name}.txt", text)
    return diagram, rott


def test_fig7a_substring_phase(text_scenario, benchmark):
    gen = TextWorkload(seed=99, vocabulary_size=2000)
    docs = text_scenario.lake.to_pylist("text")
    queries = [SubstringQuery(n) for n in gen.present_queries(docs, 8, length=14)]
    benchmark(
        lambda: text_scenario.client.search("text", queries[0], k=10)
    )
    diagram, _ = _report(
        "substring", text_scenario, PAPER_TEXT_BYTES, queries, "a (substring)"
    )
    # Paper shape assertions.
    assert diagram.orders_of_magnitude_won("rottnest", 10.0) >= 3.0
    assert diagram.break_even_months("rottnest", 1e4) < 1.0
    # Curvature up vs brute force: the lower boundary rises with months
    # (index storage is a large fraction of data storage).
    lo_1 = diagram.win_band("rottnest", 1.0)[0]
    lo_100 = diagram.win_band("rottnest", 100.0)[0]
    assert lo_100 > lo_1 * 3


def test_fig7b_uuid_phase(uuid_scenario, benchmark):
    gen = uuid_scenario.uuid_gen
    queries = [UuidQuery(k) for k in gen.present_queries(8)]
    benchmark(lambda: uuid_scenario.client.search("uuid", queries[0], k=10))
    diagram, _ = _report(
        "uuid", uuid_scenario, PAPER_UUID_BYTES, queries, "b (UUID)"
    )
    assert diagram.orders_of_magnitude_won("rottnest", 10.0) >= 4.0
    assert diagram.break_even_months("rottnest", 1e4) < 0.5


def test_fig7_boundary_curvature(text_scenario, uuid_scenario, benchmark):
    """§VII-B1: the Rottnest/brute boundary curves up for substring
    search (index ~ as large as the data) but stays much flatter for
    UUID search (tiny trie index)."""
    gen = TextWorkload(seed=99, vocabulary_size=2000)
    docs = text_scenario.lake.to_pylist("text")
    benchmark(
        lambda: text_scenario.client.search(
            "text", SubstringQuery(docs[0][:12]), k=5
        )
    )
    text_diag, _ = _report(
        "substring_curv", text_scenario, PAPER_TEXT_BYTES,
        [SubstringQuery(n) for n in gen.present_queries(docs, 3, length=14)],
        "a (curvature)",
    )
    uuid_diag, _ = _report(
        "uuid_curv", uuid_scenario, PAPER_UUID_BYTES,
        [UuidQuery(k) for k in uuid_scenario.uuid_gen.present_queries(3)],
        "b (curvature)",
    )

    def curvature(diagram):
        lo_1 = diagram.win_band("rottnest", 1.0)[0]
        lo_100 = diagram.win_band("rottnest", 100.0)[0]
        return lo_100 / lo_1

    assert curvature(uuid_diag) < curvature(text_diag) / 3

"""Figure 13: search latency on uncompacted vs compacted index files.

Appends data in many small batches, indexing after each, then compares
search latency (and request counts) before and after index compaction
for substring and UUID search. Expected shape: uncompacted latency
grows with the number of index files (every file is opened and queried),
compacted latency is ~flat — which is what makes ``cpq_r`` effectively
constant in dataset size (§VII-D2).
"""

import pytest

from repro.core.client import RottnestClient
from repro.core.maintenance import compact_indices
from repro.core.queries import SubstringQuery, UuidQuery
from repro.formats.schema import ColumnType, Field, Schema
from repro.lake.table import LakeTable, TableConfig
from repro.storage.latency import LatencyModel
from repro.storage.object_store import InMemoryObjectStore
from repro.util.clock import SimClock
from repro.workloads.text import TextWorkload
from repro.workloads.uuids import UuidWorkload

from benchmarks.common import write_result

LAT = LatencyModel()
BATCHES = [2, 4, 8, 16]


def uuid_series():
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("uuid", ColumnType.BINARY))
    lake = LakeTable.create(
        store, "lake/u", schema,
        TableConfig(row_group_rows=4000, page_target_bytes=32 * 1024),
    )
    client = RottnestClient(store, "idx/u", lake)
    gen = UuidWorkload(seed=0, nbytes=128)
    rows = []
    done = 0
    for target in BATCHES:
        while done < target:
            lake.append({"uuid": gen.batch(2000)})
            client.index("uuid", "uuid_trie")
            done += 1
        key = gen.present_queries(1)[0]
        before = client.search("uuid", UuidQuery(key), k=5)
        # Compact on a copy of the metadata state? Compaction is
        # destructive-by-addition; measure, compact, measure, then keep
        # appending (matching how an operator would run it).
        compact_indices(client, "uuid", "uuid_trie")
        after = client.search("uuid", UuidQuery(key), k=5)
        rows.append(
            (
                target,
                before.stats.index_files_queried,
                before.stats.estimated_latency(LAT),
                after.stats.index_files_queried,
                after.stats.estimated_latency(LAT),
            )
        )
    return rows


def text_series():
    store = InMemoryObjectStore(clock=SimClock())
    schema = Schema.of(Field("text", ColumnType.STRING))
    lake = LakeTable.create(
        store, "lake/t", schema,
        TableConfig(row_group_rows=2000, page_target_bytes=16 * 1024),
    )
    client = RottnestClient(store, "idx/t", lake)
    gen = TextWorkload(seed=0, vocabulary_size=1500)
    rows = []
    done = 0
    needle = None
    docs0 = None
    for target in BATCHES:
        while done < target:
            docs = gen.documents(120, avg_chars=250)
            if docs0 is None:
                docs0 = docs
            lake.append({"text": docs})
            client.index(
                "text", "fm",
                params={"block_size": 8192, "sample_rate": 32,
                        "store_pagemap": False},
            )
            done += 1
        needle = docs0[0][:12]
        before = client.search("text", SubstringQuery(needle), k=5)
        compact_indices(client, "text", "fm")
        after = client.search("text", SubstringQuery(needle), k=5)
        rows.append(
            (
                target,
                before.stats.index_files_queried,
                before.stats.estimated_latency(LAT),
                after.stats.index_files_queried,
                after.stats.estimated_latency(LAT),
            )
        )
    return rows


def render_series(title, rows):
    lines = [
        f"--- {title} ---",
        f"{'files':>6} | {'uncompacted':>24} | {'compacted':>24}",
        f"{'':>6} | {'idx files / latency':>24} | {'idx files / latency':>24}",
    ]
    for batches, n_before, lat_before, n_after, lat_after in rows:
        lines.append(
            f"{batches:>6} | {n_before:>10} {lat_before*1000:9.1f} ms | "
            f"{n_after:>10} {lat_after*1000:9.1f} ms"
        )
    return "\n".join(lines)


#: Requests per uncompacted index-file query, measured from the micro
#: runs (open: HEAD + tail GET; query: ~1-2 component GETs).
REQUESTS_PER_INDEX = 4


def modeled_latency_at_scale(num_index_files: int, compacted: bool) -> float:
    """Latency at paper-scale index-file counts.

    Uncompacted search opens and queries every index file: the per-round
    width grows with the file count until it saturates connection
    concurrency and the per-prefix request rate; the plan phase must
    also page through a LIST of the metadata (1000 keys per page).
    Compacted search always touches a handful of large files.
    """
    n = 1 if compacted else num_index_files
    list_pages = max(1, -(-n // 1000))
    plan = list_pages * LAT.list_latency_s
    open_round = LAT.round_latency([256 * 1024] * n)
    query_rounds = 2 * LAT.round_latency([64 * 1024] * n)
    probe = LAT.round_latency([300_000] * 4)
    return plan + open_round + query_rounds + probe


def test_fig13_compaction(benchmark):
    u_rows = uuid_series()
    t_rows = text_series()
    benchmark(lambda: modeled_latency_at_scale(1000, compacted=False))

    scale_lines = [
        "--- modeled at paper-scale index-file counts ---",
        f"{'index files':>12} | {'uncompacted':>12} | {'compacted':>10}",
    ]
    scale_points = {}
    for n in (10, 100, 1000, 10_000):
        un = modeled_latency_at_scale(n, compacted=False)
        co = modeled_latency_at_scale(n, compacted=True)
        scale_points[n] = (un, co)
        scale_lines.append(f"{n:>12} | {un:10.2f} s | {co:8.2f} s")

    text = "\n".join(
        [
            "=== Figure 13: uncompacted vs compacted search latency ===",
            render_series("UUID search (25x-style compaction)", u_rows),
            render_series("substring search (100x-style compaction)", t_rows),
            "\n".join(scale_lines),
        ]
    )
    print(text)
    write_result("fig13_compaction.txt", text)

    for rows in (u_rows, t_rows):
        # Uncompacted: more index files are queried as batches grow.
        assert rows[-1][1] > rows[0][1]
        # Compacted: a single index file regardless of batch count.
        assert all(r[3] == 1 for r in rows)
        # Compacted latency is flat (within a round) across dataset
        # growth, and no worse than uncompacted at the largest size.
        compacted = [r[4] for r in rows]
        assert max(compacted) <= min(compacted) + LAT.first_byte_s + 1e-9
        assert rows[-1][4] <= rows[-1][2] + 1e-9
    # Paper-scale shape: uncompacted latency grows sharply with file
    # count; compacted stays constant (Fig. 13's divergence).
    assert scale_points[10_000][0] > scale_points[10][0] * 5
    assert scale_points[10_000][1] == pytest.approx(scale_points[10][1])

"""Figure 8 + §VII-A: horizontal scaling and minimum latency thresholds.

* 8a/8b — brute-force latency and cost per query vs cluster size
  (1..64 workers) for all three query types at paper dataset scale:
  near-linear speedup to ~32 workers, marked diminishing returns at 64,
  cost per query rising once scaling saturates.
* 8c/8d — Rottnest latency and cost vs number of searchers: latency is
  *depth*-bound so it barely improves; cost grows ~linearly. Rottnest is
  meant to run shared-nothing on one instance per query.
* §VII-A table — minimum latency thresholds: Rottnest on one searcher
  vs brute force on 64 workers (paper: 4.3x / 4.3x / 5.4x faster).
"""

import pytest

from repro.core.queries import SubstringQuery, UuidQuery, VectorQuery
from repro.storage.costs import CostModel
from repro.storage.latency import LatencyModel
from repro.workloads.text import TextWorkload

from benchmarks.common import (
    PAPER_TEXT_BYTES,
    PAPER_UUID_BYTES,
    PAPER_VECTOR_BYTES,
    SEARCHER_INSTANCE,
    build_text_scenario,
    build_uuid_scenario,
    build_vector_scenario,
    write_bench,
    write_result,
)

from benchmarks.common import BRUTE_MODELS

WORKERS = [1, 2, 4, 8, 16, 32, 64]
COSTS = CostModel()
LAT = LatencyModel()

PAPER_BYTES = {
    "substring": PAPER_TEXT_BYTES,
    "uuid": PAPER_UUID_BYTES,
    "vector": PAPER_VECTOR_BYTES,
}
MODELS = {
    "substring": BRUTE_MODELS["fm"],
    "uuid": BRUTE_MODELS["uuid_trie"],
    "vector": BRUTE_MODELS["ivf_pq"],
}


@pytest.fixture(scope="module")
def scenarios():
    text = build_text_scenario(docs_per_file=300, files=2)
    uuid = build_uuid_scenario(keys_per_file=15_000, files=2)
    vector = build_vector_scenario(vectors_per_file=3000, files=2)
    gen = TextWorkload(seed=5, vocabulary_size=2000)
    docs = text.lake.to_pylist("text")
    queries = {
        "substring": SubstringQuery(gen.present_queries(docs, 1, length=12)[0]),
        "uuid": UuidQuery(uuid.uuid_gen.present_queries(1)[0]),
        "vector": VectorQuery(vector.corpus[17], nprobe=8, refine=64),
    }
    return {"substring": text, "uuid": uuid, "vector": vector}, queries


def test_fig8ab_bruteforce_scaling(benchmark):
    benchmark(lambda: MODELS["substring"].latency(PAPER_TEXT_BYTES, 8))
    lines = ["=== Figure 8a/8b: brute force scaling (modeled, paper scale) ==="]
    lines.append(
        f"{'workers':>8} | " + " | ".join(f"{k:>22}" for k in PAPER_BYTES)
    )
    lines.append(
        f"{'':>8} | " + " | ".join(f"{'latency_s / $_query':>22}" for _ in PAPER_BYTES)
    )
    series = {}
    for w in WORKERS:
        cells = []
        for kind, nbytes in PAPER_BYTES.items():
            latency = MODELS[kind].latency(nbytes, w)
            cost = MODELS[kind].cost_per_query(nbytes, w, COSTS)
            series.setdefault(kind, []).append((w, latency, cost))
            cells.append(f"{latency:9.1f}s ${cost:8.3f}")
        lines.append(f"{w:>8} | " + " | ".join(f"{c:>22}" for c in cells))
    text = "\n".join(lines)
    print(text)
    write_result("fig8ab_bruteforce.txt", text)
    for kind, points in series.items():
        lat = {w: l for w, l, _ in points}
        cost = {w: c for w, _, c in points}
        # Good speedup up to 32 workers.
        assert lat[1] / lat[32] > 12
        # Marked slowdown in improvement from 32 -> 64.
        assert lat[32] / lat[64] < 1.8
        # Cost per query is higher at 64 than at the 8-worker sweet spot.
        assert cost[64] > cost[8]


def test_fig8cd_rottnest_scaling(scenarios, benchmark):
    """Rottnest latency is depth-bound: parallel searchers don't help."""
    deployments, queries = scenarios
    benchmark(
        lambda: deployments["uuid"].client.search("uuid", queries["uuid"], k=5)
    )
    lines = ["=== Figure 8c/8d: Rottnest scaling with searcher count ==="]
    searcher_hourly = COSTS.instance_hourly(SEARCHER_INSTANCE)
    shape = {}
    for kind, scenario in deployments.items():
        res = scenario.client.search(scenario.column, queries[kind], k=5)
        trace = res.stats.trace
        base = LAT.trace_latency(trace)
        lines.append(f"--- {kind} ---")
        for searchers in (1, 2, 4, 8):
            # Parallel searchers split the *width* of each round but
            # cannot split dependent rounds; concurrency was never the
            # bottleneck, so latency is flat while cost scales.
            latency = LAT.trace_latency(trace)
            cost = latency * searchers * searcher_hourly / 3600.0
            shape.setdefault(kind, []).append((searchers, latency, cost))
            lines.append(
                f"  searchers={searchers}: latency={latency*1000:7.1f} ms  "
                f"cost/query=${cost:.2e}"
            )
        assert base > 0
    text = "\n".join(lines)
    print(text)
    write_result("fig8cd_rottnest.txt", text)
    write_bench(
        "fig8",
        "rottnest_scaling",
        metrics={
            f"{kind}_latency_ms": round(points[0][1] * 1000.0, 3)
            for kind, points in shape.items()
        },
        params={"searchers": [1, 2, 4, 8]},
    )
    for points in shape.values():
        latencies = [l for _, l, _ in points]
        costs = [c for _, _, c in points]
        assert max(latencies) == pytest.approx(min(latencies))  # flat
        assert costs[-1] == pytest.approx(costs[0] * 8)  # linear cost


def test_vii_a_minimum_latency_thresholds(scenarios, benchmark):
    """§VII-A: Rottnest (1 searcher) vs brute force (64 workers)."""
    deployments, queries = scenarios
    benchmark(
        lambda: deployments["substring"].client.search(
            "text", queries["substring"], k=5
        )
    )
    paper_thresholds = {"substring": 4.6, "uuid": 1.7, "vector": 2.3}
    paper_speedups = {"substring": 4.3, "uuid": 4.3, "vector": 5.4}
    measured = {}
    lines = [
        "=== §VII-A minimum latency thresholds ===",
        f"{'workload':>10} | {'rottnest(1) meas.':>18} | {'paper':>6} | "
        f"{'brute(64) model':>16} | {'speedup':>8} | {'paper':>6}",
    ]
    for kind, scenario in deployments.items():
        res = scenario.client.search(scenario.column, queries[kind], k=5)
        rott = res.stats.estimated_latency(LAT)
        brute64 = MODELS[kind].latency(PAPER_BYTES[kind], 64)
        speedup = brute64 / max(rott, paper_thresholds[kind])
        measured[f"{kind}_latency_ms"] = round(rott * 1000.0, 3)
        lines.append(
            f"{kind:>10} | {rott*1000:15.1f} ms | {paper_thresholds[kind]:5.1f}s"
            f" | {brute64:14.1f} s | {speedup:7.1f}x | {paper_speedups[kind]:5.1f}x"
        )
        # The paper's conclusion: Rottnest's minimum latency is several
        # times below brute force's even at its 64-worker best.
        assert brute64 > paper_thresholds[kind] * 2
        assert rott < brute64
    text = "\n".join(lines)
    print(text)
    write_result("viia_thresholds.txt", text)
    write_bench(
        "fig8",
        "minimum_latency_thresholds",
        metrics=measured,
        params={"brute_workers": 64, "searchers": 1},
    )

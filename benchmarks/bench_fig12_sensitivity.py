"""Figure 12: sensitivity of the vector phase diagram (recall 0.92) to
``cpq_r``, ``ic_r`` and the index part of ``cpm_r``.

Each parameter is scaled by x0.1 / x0.3 / x1 / x3 / x10 and the win-band
edges at 10 months are tracked. The paper's two observations:

1. cheaper queries move the copy-data boundary (upper edge), not the
   brute-force one; a smaller index does exactly the opposite;
2. cheaper indexing only shifts the short-horizon onset, not the
   long-horizon boundaries.
"""

import pytest

from repro.engines.dedicated import LANCEDB_MODEL
from repro.tco.phase import compute_phase_diagram
from repro.tco.sensitivity import sweep

from benchmarks.common import (
    PAPER_LATENCY,
    PAPER_VECTOR_BYTES,
    approaches_for,
    build_vector_scenario,
    write_result,
)

FACTORS = [0.1, 0.3, 1.0, 3.0, 10.0]
PARAMETERS = ["cost_per_query", "index_cost", "index_storage_monthly"]


@pytest.fixture(scope="module")
def approaches():
    scenario = build_vector_scenario(vectors_per_file=3000, files=2)
    return approaches_for(
        name_suffix="fig12",
        paper_bytes=PAPER_VECTOR_BYTES,
        expansion=scenario.expansion,
        rottnest_latency_s=PAPER_LATENCY["ivf_pq"] * 1.0,  # recall 0.92
        index_type="ivf_pq",
        dedicated_model=LANCEDB_MODEL,
    )


def test_fig12_sensitivity(approaches, benchmark):
    copy, brute, rott = approaches
    benchmark(lambda: compute_phase_diagram([copy, brute, rott], resolution=48))
    lines = ["=== Figure 12: sensitivity (vector @0.92) ==="]
    bands = {}
    onsets = {}
    for parameter in PARAMETERS:
        lines.append(f"--- scaling {parameter} ---")
        points = sweep(rott, brute, copy, parameter=parameter, factors=FACTORS)
        for point in points:
            band = point.win_band_at_10_months
            onset = point.diagram.break_even_months("rottnest", 1e4)
            bands[(parameter, point.factor)] = band
            onsets[(parameter, point.factor)] = onset
            band_text = (
                f"[{band[0]:9.2e}, {band[1]:9.2e}]" if band else "(never wins)"
            )
            onset_text = f"{onset:8.4f}" if onset is not None else "     n/a"
            lines.append(
                f"  x{point.factor:<5} win band @10mo {band_text}  "
                f"onset @1e4 queries {onset_text} months"
            )
    text = "\n".join(lines)
    print(text)
    write_result("fig12_sensitivity.txt", text)

    # Observation 1a: cpq_r down 10x raises the upper edge a lot, the
    # lower edge little.
    base = bands[("cost_per_query", 1.0)]
    cheap_q = bands[("cost_per_query", 0.1)]
    assert cheap_q[1] > base[1] * 3
    assert cheap_q[0] == pytest.approx(base[0], rel=0.5)
    # Observation 1b: index storage moves the brute-force (lower) edge
    # and barely the copy-data (upper) edge. For the vector index the
    # x0.1 direction saturates against ic_r, so assert on x10.
    small_idx = bands[("index_storage_monthly", 0.1)]
    big_idx = bands[("index_storage_monthly", 10.0)]
    assert small_idx[0] < base[0]
    assert big_idx[0] > base[0] * 2
    assert small_idx[1] == pytest.approx(base[1], rel=0.5)
    assert big_idx[1] == pytest.approx(base[1], rel=0.5)
    # Observation 2: ic_r only moves the onset.
    cheap_ic = bands[("index_cost", 0.1)]
    assert cheap_ic[1] == pytest.approx(base[1], rel=0.2)
    assert onsets[("index_cost", 0.1)] < onsets[("index_cost", 10.0)]
